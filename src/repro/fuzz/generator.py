"""Seeded random generator of well-typed MiniJ programs.

Every program is produced by a private :class:`random.Random` instance, so
one seed maps to exactly one source text — no global ``random`` state is
read or written, and two campaigns with the same ``--seed-base`` emit
byte-identical sources (the determinism property ``tests/test_fuzz.py``
locks down).

The distribution is deliberately biased toward the shapes ABCD reasons
about, not toward language coverage for its own sake:

* every program allocates arrays and indexes them, with the index pool
  weighted toward ``i``, ``i + 1``, ``i - 1``, ``len(a) - 1`` — the
  off-by-one frontier where an unsound elimination changes behavior;
* counted ``for``/``while`` loops with affine updates (``i = i + c``,
  ``i = i - c``) build the monotonic φ cycles the amplifying-cycle check
  must classify;
* branch conditions compare indices against lengths and against each
  other, producing the π-constraint diamonds the solver memoizes across;
* helper functions take array parameters and are called from ``main``,
  so ``--inline`` resolves callee arrays to caller allocations.

Termination is by construction, not by luck: loop bounds are snapshotted
into a frozen temporary before the loop, counters are never reassigned in
the body, and helpers only call helpers with a strictly smaller index (no
recursion).  Traps, on the other hand, are *intended*: a healthy fraction
of programs walks an index one past its array, and the oracle demands the
trap be byte-identical on both sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class GeneratorConfig:
    """Size/shape knobs of one generated program."""

    max_helpers: int = 3
    max_statements: int = 7
    max_loop_depth: int = 2
    max_expr_depth: int = 3
    #: Largest literal used for array sizes and loop bounds.
    max_array_size: int = 24
    #: Probability that a generated index deliberately risks going one
    #: past the end (the oracle requires the trap to match on both sides).
    off_by_one_bias: float = 0.25
    #: Program shape: ``"default"`` is the ABCD-biased random mix;
    #: ``"deep-chain"`` emits straight-line π/copy chains and φ-ladders
    #: ``chain_depth`` links long — the structural stress for the
    #: iterative solver (a recursive solver hits the interpreter stack
    #: long before the step budget on these).
    profile: str = "default"
    #: Length of the value chain in ``"deep-chain"`` profile programs.
    chain_depth: int = 2000


DEFAULT_CONFIG = GeneratorConfig()


@dataclass
class _Var:
    name: str
    type: str  # "int" | "int[]" | "bool"
    #: Loop counters and frozen bounds must not be reassigned, or the
    #: termination argument collapses.
    frozen: bool = False


class _FunctionShape:
    """Signature of a generated function, for call-site construction."""

    def __init__(self, name: str, params: List[str], returns: str) -> None:
        self.name = name
        self.params = params  # parameter types, in order
        self.returns = returns  # "int" | "void"


class _Generator:
    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.rng = random.Random(seed)
        self.config = config
        self.lines: List[str] = []
        self.indent = 0
        self.fresh = 0
        #: Functions callable from the one being generated (no recursion:
        #: helper k may only call helpers 0..k-1).
        self.callable: List[_FunctionShape] = []

    # ------------------------------------------------------------------
    # Emission helpers.
    # ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    # ------------------------------------------------------------------
    # Expressions.  Each returns source text of the requested type, built
    # only from variables currently in ``scope``.
    # ------------------------------------------------------------------

    def _ints(self, scope: List[_Var]) -> List[_Var]:
        return [v for v in scope if v.type == "int"]

    def _arrays(self, scope: List[_Var]) -> List[_Var]:
        return [v for v in scope if v.type == "int[]"]

    def int_atom(self, scope: List[_Var]) -> str:
        rng = self.rng
        ints = self._ints(scope)
        arrays = self._arrays(scope)
        roll = rng.random()
        if roll < 0.35 and ints:
            return rng.choice(ints).name
        if roll < 0.5 and arrays:
            return f"len({rng.choice(arrays).name})"
        return str(rng.randrange(0, self.config.max_array_size + 1))

    def int_expr(self, scope: List[_Var], depth: Optional[int] = None) -> str:
        rng = self.rng
        if depth is None:
            depth = rng.randrange(0, self.config.max_expr_depth + 1)
        if depth <= 0:
            return self.int_atom(scope)
        roll = rng.random()
        arrays = self._arrays(scope)
        if roll < 0.15 and arrays:
            array = rng.choice(arrays)
            return f"{array.name}[{self.index_expr(scope, array)}]"
        if roll < 0.25 and self.callable:
            call = self.call_expr(scope, want_value=True)
            if call is not None:
                return call
        op = rng.choice(["+", "+", "+", "-", "-", "*", "%", "/"])
        lhs = self.int_expr(scope, depth - 1)
        rhs = self.int_expr(scope, depth - 1)
        return f"({lhs} {op} {rhs})"

    def index_expr(self, scope: List[_Var], array: _Var) -> str:
        """An index biased toward the in-range/off-by-one frontier."""
        rng = self.rng
        ints = self._ints(scope)
        pool: List[str] = [f"len({array.name}) - 1"]
        if ints:
            i = rng.choice(ints).name
            pool += [i, f"{i} + 1", f"{i} - 1", f"{i} % len({array.name})"]
        if rng.random() < self.config.off_by_one_bias:
            pool.append(f"len({array.name})")
            if ints:
                pool.append(f"{rng.choice(ints).name} + 2")
        pool.append(str(rng.randrange(0, self.config.max_array_size + 1)))
        return rng.choice(pool)

    def bool_expr(self, scope: List[_Var]) -> str:
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        lhs = self.int_expr(scope, 1)
        rhs = self.int_expr(scope, 1)
        simple = f"{lhs} {op} {rhs}"
        roll = rng.random()
        if roll < 0.15:
            other = f"{self.int_expr(scope, 0)} {rng.choice(['<', '>='])} {self.int_expr(scope, 0)}"
            return f"{simple} {rng.choice(['&&', '||'])} {other}"
        if roll < 0.2:
            return f"!({simple})"
        return simple

    def call_expr(self, scope: List[_Var], want_value: bool) -> Optional[str]:
        rng = self.rng
        candidates = [
            shape
            for shape in self.callable
            if (shape.returns == "int") == want_value
            and all(
                param != "int[]" or self._arrays(scope) for param in shape.params
            )
        ]
        if not candidates:
            return None
        shape = rng.choice(candidates)
        args = []
        for param in shape.params:
            if param == "int[]":
                args.append(rng.choice(self._arrays(scope)).name)
            else:
                args.append(self.int_expr(scope, 1))
        return f"{shape.name}({', '.join(args)})"

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def array_size_expr(self, scope: List[_Var]) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.7 or not self._ints(scope):
            # Mostly small constants; size 0 stresses empty-array paths.
            return str(rng.choice([0, 1, 2] + list(range(2, self.config.max_array_size + 1))))
        if roll < 0.9:
            return f"({self.int_atom(scope)} % {rng.randrange(1, self.config.max_array_size + 1)})"
        # Rarely a bare variable — may be negative at runtime, which must
        # raise the same NegativeArraySizeError on both sides.
        return rng.choice(self._ints(scope)).name

    def statement(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        rng = self.rng
        arrays = self._arrays(scope)
        choices: List[Tuple[str, float]] = [
            ("let_int", 1.0),
            ("let_array", 0.5 if loop_depth == 0 else 0.1),
            ("assign", 0.8),
            ("store", 1.4 if arrays else 0.0),
            ("if", 0.9),
            ("for", 1.2 if loop_depth < self.config.max_loop_depth else 0.0),
            ("while", 0.5 if loop_depth < self.config.max_loop_depth else 0.0),
            ("call", 0.5 if self.callable else 0.0),
        ]
        total = sum(weight for _, weight in choices)
        pick = rng.random() * total
        kind = choices[-1][0]
        for name, weight in choices:
            pick -= weight
            if pick <= 0:
                kind = name
                break
        getattr(self, f"stmt_{kind}")(scope, loop_depth, budget)

    def stmt_let_int(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        name = self.name("v")
        self.emit(f"let {name}: int = {self.int_expr(scope)};")
        scope.append(_Var(name, "int"))

    def stmt_let_array(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        name = self.name("a")
        self.emit(f"let {name}: int[] = new int[{self.array_size_expr(scope)}];")
        scope.append(_Var(name, "int[]"))

    def stmt_assign(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        mutable = [v for v in self._ints(scope) if not v.frozen]
        if not mutable:
            return self.stmt_let_int(scope, loop_depth, budget)
        target = self.rng.choice(mutable)
        self.emit(f"{target.name} = {self.int_expr(scope)};")

    def stmt_store(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        array = self.rng.choice(self._arrays(scope))
        index = self.index_expr(scope, array)
        self.emit(f"{array.name}[{index}] = {self.int_expr(scope, 1)};")

    def stmt_call(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        call = self.call_expr(scope, want_value=self.rng.random() < 0.7)
        if call is None:
            return self.stmt_let_int(scope, loop_depth, budget)
        if "(" in call and self.rng.random() < 0.7:
            shape_returns_value = any(
                call.startswith(shape.name + "(") and shape.returns == "int"
                for shape in self.callable
            )
            if shape_returns_value:
                name = self.name("v")
                self.emit(f"let {name}: int = {call};")
                scope.append(_Var(name, "int"))
                return
        self.emit(f"{call};")

    def stmt_if(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        self.emit(f"if ({self.bool_expr(scope)}) {{")
        self.block(scope, loop_depth, max(1, budget // 2))
        if self.rng.random() < 0.45:
            self.emit("} else {")
            self.block(scope, loop_depth, max(1, budget // 2))
        self.emit("}")

    def _loop_bound(self, scope: List[_Var]) -> str:
        """A loop-invariant bound: a frozen temp, a length, or a literal."""
        rng = self.rng
        arrays = self._arrays(scope)
        roll = rng.random()
        if roll < 0.5 and arrays:
            array = rng.choice(arrays).name
            return rng.choice([f"len({array})", f"len({array}) - 1"])
        if roll < 0.75:
            return str(rng.randrange(1, self.config.max_array_size + 1))
        name = self.name("b")
        self.emit(f"let {name}: int = {self.int_expr(scope, 1)};")
        scope.append(_Var(name, "int", frozen=True))
        return name

    def stmt_for(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        rng = self.rng
        counter = self.name("i")
        bound = self._loop_bound(scope)
        step = rng.choice([1, 1, 1, 2])
        if rng.random() < 0.3:
            # Decreasing loop: the φ cycle is monotonically shrinking.
            start = bound if not bound.isdigit() else bound
            self.emit(
                f"for (let {counter}: int = {start}; {counter} > 0; "
                f"{counter} = {counter} - {step}) {{"
            )
        else:
            cmp = rng.choice(["<", "<", "<="])
            self.emit(
                f"for (let {counter}: int = 0; {counter} {cmp} {bound}; "
                f"{counter} = {counter} + {step}) {{"
            )
        inner = scope + [_Var(counter, "int", frozen=True)]
        self.block(inner, loop_depth + 1, max(1, budget // 2))
        self.emit("}")

    def stmt_while(self, scope: List[_Var], loop_depth: int, budget: int) -> None:
        rng = self.rng
        counter = self.name("w")
        bound = self._loop_bound(scope)
        self.emit(f"let {counter}: int = 0;")
        scope.append(_Var(counter, "int", frozen=True))
        self.emit(f"while ({counter} < {bound}) {{")
        inner = list(scope)
        self.block(inner, loop_depth + 1, max(1, budget // 2), tail_stmt=f"{counter} = {counter} + 1;")
        self.emit("}")

    def block(
        self,
        scope: List[_Var],
        loop_depth: int,
        budget: int,
        tail_stmt: Optional[str] = None,
    ) -> None:
        self.indent += 1
        count = self.rng.randrange(1, budget + 1)
        local = list(scope)
        for _ in range(count):
            self.statement(local, loop_depth, max(1, budget // 2))
        if tail_stmt is not None:
            self.emit(tail_stmt)
        self.indent -= 1

    # ------------------------------------------------------------------
    # Functions.
    # ------------------------------------------------------------------

    def helper(self, index: int) -> _FunctionShape:
        rng = self.rng
        name = f"helper{index}"
        params: List[_Var] = [_Var(f"p{index}a", "int[]")]
        if rng.random() < 0.8:
            params.append(_Var(f"p{index}x", "int"))
        returns = "int" if rng.random() < 0.85 else "void"
        sig = ", ".join(f"{p.name}: {p.type}" for p in params)
        self.emit(f"fn {name}({sig}): {returns} {{")
        scope = list(params)
        self.indent += 1
        count = rng.randrange(2, self.config.max_statements + 1)
        for _ in range(count):
            self.statement(scope, 0, 3)
        if returns == "int":
            self.emit(f"return {self.int_expr(scope, 1)};")
        self.indent -= 1
        self.emit("}")
        self.emit("")
        return _FunctionShape(name, [p.type for p in params], returns)

    def main(self) -> None:
        rng = self.rng
        self.emit("fn main(): int {")
        self.indent += 1
        scope: List[_Var] = []
        for _ in range(rng.randrange(1, 4)):
            self.stmt_let_array(scope, 0, 1)
        for _ in range(rng.randrange(0, 3)):
            self.stmt_let_int(scope, 0, 1)
        count = rng.randrange(2, self.config.max_statements + 1)
        for _ in range(count):
            self.statement(scope, 0, self.config.max_statements)
        # Fold observable state into the result so eliminated computation
        # would change the returned value, not just the counters.
        ints = self._ints(scope)
        arrays = self._arrays(scope)
        parts = [v.name for v in ints[:3]]
        for array in arrays[:2]:
            parts.append(f"len({array.name})")
            sum_name = self.name("s")
            idx = self.name("k")
            self.emit(f"let {sum_name}: int = 0;")
            self.emit(
                f"for (let {idx}: int = 0; {idx} < len({array.name}); "
                f"{idx} = {idx} + 1) {{"
            )
            self.indent += 1
            self.emit(f"{sum_name} = ({sum_name} * 31 + {array.name}[{idx}]) % 1000003;")
            self.indent -= 1
            self.emit("}")
            parts.append(sum_name)
        result = " + ".join(parts) if parts else "0"
        self.emit(f"return {result};")
        self.indent -= 1
        self.emit("}")

    def generate(self) -> str:
        helper_count = self.rng.randrange(0, self.config.max_helpers + 1)
        for index in range(helper_count):
            shape = self.helper(index)
            self.callable.append(shape)
        self.main()
        return "\n".join(self.lines) + "\n"


class _DeepChainGenerator:
    """``--profile deep-chain``: one flat function whose inequality graph
    is a single chain thousands of vertices long.

    The chain is built from three link kinds, all at statement level (no
    syntactic nesting, so the recursive-descent parser is untouched by
    the depth):

    * **copy** — ``let v_k = v_{k-1};`` a 0-weight copy edge;
    * **φ rung** — an ``if`` whose branch reassigns the carrier through
      an ``add 0``, merging at a φ vertex (the meet must prove both the
      branch and the fall-through path);
    * **π rung** — a branch on ``v_{k-1} < len(a)``, so the true arm
      flows through a π vertex carrying the comparison's constraint.

    The chain ends in a bounds-checked store, so both the upper and the
    lower proof walk the full chain.  The value is constant 0 throughout
    and the array is non-empty: the checks are *provable*, which makes
    the emitted certificate as deep as the chain — exercising witness
    construction, serialization, and the independent checker at depth,
    not just the solver.
    """

    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.rng = random.Random(seed)
        self.config = config

    def generate(self) -> str:
        rng = self.rng
        size = rng.randrange(1, max(2, self.config.max_array_size + 1))
        store_value = rng.randrange(0, 100)
        lines: List[str] = [
            "fn main(): int {",
            f"  let a: int[] = new int[{size}];",
            "  let m: int = 0;",
            "  let v0: int = 0;",
        ]
        prev = "v0"
        for k in range(1, self.config.chain_depth + 1):
            roll = rng.random()
            if roll < 0.6:
                lines.append(f"  let v{k}: int = {prev};")
            elif roll < 0.85:
                # φ rung: branch and fall-through merge at a φ vertex.
                lines.append(f"  m = {prev};")
                lines.append(f"  if (m < len(a)) {{")
                lines.append("    m = m + 0;")
                lines.append("  }")
                lines.append(f"  let v{k}: int = m;")
            else:
                # π rung: the true arm carries the comparison constraint.
                lines.append(f"  if ({prev} < len(a)) {{")
                lines.append(f"    m = {prev};")
                lines.append("  } else {")
                lines.append("    m = 0;")
                lines.append("  }")
                lines.append(f"  let v{k}: int = m;")
            prev = f"v{k}"
        lines += [
            f"  a[{prev}] = {store_value};",
            f"  return {prev} + a[{prev}] + len(a);",
            "}",
        ]
        return "\n".join(lines) + "\n"


def generate_source(seed: int, config: GeneratorConfig = DEFAULT_CONFIG) -> str:
    """One seed → one deterministic, well-typed MiniJ source text."""
    if config.profile == "deep-chain":
        return _DeepChainGenerator(seed, config).generate()
    if config.profile != "default":
        raise ValueError(f"unknown generator profile {config.profile!r}")
    return _Generator(seed, config).generate()
