"""Render a frontend AST back to MiniJ source text.

The shrinker works on the parsed AST (structural transformations compose
much better than line deletion on a brace language), so it needs the
inverse of the parser.  Expressions are fully parenthesized — the goal is
round-tripping through ``parse_source``, not pretty output — and the
result of ``parse(render(ast))`` is structurally identical to ``ast`` up
to source locations.
"""

from __future__ import annotations

from typing import List

from repro.frontend import ast
from repro.frontend.types import Type


def render_type(type_: Type) -> str:
    return str(type_)


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLiteral):
        # Negative literals re-parse as unary minus applications.
        return str(expr.value) if expr.value >= 0 else f"(0 - {-expr.value})"
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return f"({render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)})"
    if isinstance(expr, ast.ArrayIndex):
        return f"{render_expr(expr.array)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.ArrayLength):
        return f"len({render_expr(expr.array)})"
    if isinstance(expr, ast.NewArray):
        return f"new int[{render_expr(expr.length)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(arg) for arg in expr.args)
        return f"{expr.callee}({args})"
    raise TypeError(f"cannot render {type(expr).__name__}")


def _render_simple_stmt(stmt: ast.Stmt) -> str:
    """An assignment/let/store/call without the trailing semicolon (the
    form allowed in ``for`` headers)."""
    if isinstance(stmt, ast.LetStmt):
        return (
            f"let {stmt.name}: {render_type(stmt.declared_type)} = "
            f"{render_expr(stmt.value)}"
        )
    if isinstance(stmt, ast.AssignStmt):
        return f"{stmt.name} = {render_expr(stmt.value)}"
    if isinstance(stmt, ast.ArrayStoreStmt):
        return (
            f"{render_expr(stmt.array)}[{render_expr(stmt.index)}] = "
            f"{render_expr(stmt.value)}"
        )
    if isinstance(stmt, ast.ExprStmt):
        return render_expr(stmt.expr)
    raise TypeError(f"{type(stmt).__name__} is not a simple statement")


def render_stmt(stmt: ast.Stmt, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, (ast.LetStmt, ast.AssignStmt, ast.ArrayStoreStmt, ast.ExprStmt)):
        lines.append(f"{pad}{_render_simple_stmt(stmt)};")
    elif isinstance(stmt, ast.IfStmt):
        lines.append(f"{pad}if ({render_expr(stmt.condition)}) {{")
        render_block(stmt.then_body, indent + 1, lines)
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            render_block(stmt.else_body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.WhileStmt):
        lines.append(f"{pad}while ({render_expr(stmt.condition)}) {{")
        render_block(stmt.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.ForStmt):
        init = _render_simple_stmt(stmt.init) if stmt.init is not None else ""
        cond = render_expr(stmt.condition) if stmt.condition is not None else ""
        step = _render_simple_stmt(stmt.step) if stmt.step is not None else ""
        lines.append(f"{pad}for ({init}; {cond}; {step}) {{")
        render_block(stmt.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {render_expr(stmt.value)};")
    elif isinstance(stmt, ast.BreakStmt):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, ast.ContinueStmt):
        lines.append(f"{pad}continue;")
    else:
        raise TypeError(f"cannot render {type(stmt).__name__}")


def render_block(body: List[ast.Stmt], indent: int, lines: List[str]) -> None:
    for stmt in body:
        render_stmt(stmt, indent, lines)


def render_program(program: ast.ProgramAST) -> str:
    lines: List[str] = []
    for index, fn in enumerate(program.functions):
        if index:
            lines.append("")
        params = ", ".join(f"{p.name}: {render_type(p.type)}" for p in fn.params)
        lines.append(f"fn {fn.name}({params}): {render_type(fn.return_type)} {{")
        render_block(fn.body, 1, lines)
        lines.append("}")
    return "\n".join(lines) + "\n"
