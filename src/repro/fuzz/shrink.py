"""Delta-debugging minimizer: shrink a program, keep its signature.

Works on the parsed frontend AST rather than on source lines — structural
edits (drop a statement, hoist a loop body, replace an expression by a
subexpression, lower a literal, delete a function) compose cleanly on a
brace language where line deletion almost never re-parses.

The invariant throughout is *signature preservation*: a candidate is
accepted only when the oracle reproduces the exact
:class:`~repro.fuzz.triage.Signature` being chased, so the minimizer can
never slide off one bug onto a different one mid-shrink.  Ill-typed
candidates are pre-filtered with a cheap parse + semantic check before
paying for a differential execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.fuzz.oracle import OracleConfig, check_source
from repro.fuzz.render import render_program
from repro.fuzz.triage import Signature

#: Cap on oracle invocations per shrink, so one stubborn reproducer can
#: never dominate a campaign's runtime.
DEFAULT_MAX_ITERATIONS = 400


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    source: str
    #: Oracle invocations spent (the ``--shrink`` cost counter).
    iterations: int = 0
    #: Accepted reductions (how many candidates kept the signature).
    accepted: int = 0
    #: False when the input never reproduced the signature to begin with.
    reproduced: bool = True


# ----------------------------------------------------------------------
# AST addressing: mutations are (kind, ordinal, action) triples applied
# to a fresh deep copy, so candidate enumeration survives copying.
# ----------------------------------------------------------------------


def _walk_stmts(
    program: ast.ProgramAST,
) -> Iterator[Tuple[List[ast.Stmt], int, ast.Stmt]]:
    """Pre-order walk yielding ``(containing_list, index, stmt)``."""

    def walk(body: List[ast.Stmt]) -> Iterator[Tuple[List[ast.Stmt], int, ast.Stmt]]:
        for index, stmt in enumerate(body):
            yield body, index, stmt
            if isinstance(stmt, ast.IfStmt):
                yield from walk(stmt.then_body)
                yield from walk(stmt.else_body)
            elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
                yield from walk(stmt.body)

    for fn in program.functions:
        yield from walk(fn.body)


def _hoisted_body(stmt: ast.Stmt) -> Optional[List[ast.Stmt]]:
    """The statement list a compound statement can be replaced by."""
    if isinstance(stmt, ast.IfStmt):
        return list(stmt.then_body) + list(stmt.else_body)
    if isinstance(stmt, ast.WhileStmt):
        return list(stmt.body)
    if isinstance(stmt, ast.ForStmt):
        prefix = [stmt.init] if stmt.init is not None else []
        return prefix + list(stmt.body)
    return None


_Setter = Callable[[ast.Expr], None]


def _expr_slots(program: ast.ProgramAST) -> Iterator[Tuple[_Setter, ast.Expr]]:
    """Pre-order walk over every expression with a setter for its slot."""

    def visit(expr: ast.Expr, setter: _Setter) -> Iterator[Tuple[_Setter, ast.Expr]]:
        yield setter, expr
        if isinstance(expr, ast.UnaryOp):
            yield from visit(expr.operand, lambda e, x=expr: setattr(x, "operand", e))
        elif isinstance(expr, ast.BinaryOp):
            yield from visit(expr.lhs, lambda e, x=expr: setattr(x, "lhs", e))
            yield from visit(expr.rhs, lambda e, x=expr: setattr(x, "rhs", e))
        elif isinstance(expr, ast.ArrayIndex):
            yield from visit(expr.array, lambda e, x=expr: setattr(x, "array", e))
            yield from visit(expr.index, lambda e, x=expr: setattr(x, "index", e))
        elif isinstance(expr, ast.ArrayLength):
            yield from visit(expr.array, lambda e, x=expr: setattr(x, "array", e))
        elif isinstance(expr, ast.NewArray):
            yield from visit(expr.length, lambda e, x=expr: setattr(x, "length", e))
        elif isinstance(expr, ast.Call):
            for index, arg in enumerate(expr.args):
                yield from visit(
                    arg, lambda e, x=expr, i=index: x.args.__setitem__(i, e)
                )

    def stmt_exprs(stmt: ast.Stmt) -> Iterator[Tuple[_Setter, ast.Expr]]:
        if isinstance(stmt, (ast.LetStmt, ast.AssignStmt)):
            yield from visit(stmt.value, lambda e, s=stmt: setattr(s, "value", e))
        elif isinstance(stmt, ast.ArrayStoreStmt):
            yield from visit(stmt.array, lambda e, s=stmt: setattr(s, "array", e))
            yield from visit(stmt.index, lambda e, s=stmt: setattr(s, "index", e))
            yield from visit(stmt.value, lambda e, s=stmt: setattr(s, "value", e))
        elif isinstance(stmt, ast.IfStmt):
            yield from visit(
                stmt.condition, lambda e, s=stmt: setattr(s, "condition", e)
            )
        elif isinstance(stmt, ast.WhileStmt):
            yield from visit(
                stmt.condition, lambda e, s=stmt: setattr(s, "condition", e)
            )
        elif isinstance(stmt, ast.ForStmt):
            if stmt.condition is not None:
                yield from visit(
                    stmt.condition, lambda e, s=stmt: setattr(s, "condition", e)
                )
        elif isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
            yield from visit(stmt.value, lambda e, s=stmt: setattr(s, "value", e))
        elif isinstance(stmt, ast.ExprStmt):
            yield from visit(stmt.expr, lambda e, s=stmt: setattr(s, "expr", e))

    for _, _, stmt in _walk_stmts(program):
        yield from stmt_exprs(stmt)
    # ``for`` init/step statements are simple statements outside the
    # pre-order statement walk's containers; cover their expressions too.
    for _, _, stmt in _walk_stmts(program):
        if isinstance(stmt, ast.ForStmt):
            for header_stmt in (stmt.init, stmt.step):
                if header_stmt is not None:
                    yield from stmt_exprs(header_stmt)


_LOC = None  # rendered output never shows locations


def _subexpressions(expr: ast.Expr) -> List[ast.Expr]:
    """Same-slot replacement candidates drawn from the node's children
    (type mismatches are filtered by the semantic pre-check)."""
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.BinaryOp):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.ArrayIndex):
        return [expr.index]
    if isinstance(expr, ast.ArrayLength):
        return []
    if isinstance(expr, ast.Call):
        return list(expr.args)
    return []


def _enumerate_mutations(program: ast.ProgramAST) -> List[Tuple[str, int, object]]:
    """All candidate reductions of ``program``, most aggressive first."""
    mutations: List[Tuple[str, int, object]] = []
    for index in reversed(range(len(program.functions))):
        if program.functions[index].name != "main":
            mutations.append(("fn", index, "delete"))
    statements = list(_walk_stmts(program))
    for ordinal in reversed(range(len(statements))):
        mutations.append(("stmt", ordinal, "delete"))
    for ordinal in reversed(range(len(statements))):
        if _hoisted_body(statements[ordinal][2]) is not None:
            mutations.append(("stmt", ordinal, "hoist"))
    slots = list(_expr_slots(program))
    for ordinal, (_, expr) in enumerate(slots):
        for child_index in range(len(_subexpressions(expr))):
            mutations.append(("expr", ordinal, ("child", child_index)))
    for ordinal, (_, expr) in enumerate(slots):
        if isinstance(expr, ast.IntLiteral):
            if expr.value not in (0, 1):
                mutations.append(("expr", ordinal, ("set", expr.value // 2)))
                mutations.append(("expr", ordinal, ("set", 0)))
        else:
            mutations.append(("expr", ordinal, ("set", 0)))
    return mutations


def _apply_mutation(
    program: ast.ProgramAST, mutation: Tuple[str, int, object]
) -> bool:
    """Apply one mutation in place; False when it no longer applies."""
    kind, ordinal, action = mutation
    if kind == "fn":
        if ordinal >= len(program.functions):
            return False
        del program.functions[ordinal]
        return True
    if kind == "stmt":
        statements = list(_walk_stmts(program))
        if ordinal >= len(statements):
            return False
        container, index, stmt = statements[ordinal]
        if action == "delete":
            del container[index]
            return True
        body = _hoisted_body(stmt)
        if body is None:
            return False
        container[index : index + 1] = body
        return True
    if kind == "expr":
        slots = list(_expr_slots(program))
        if ordinal >= len(slots):
            return False
        setter, expr = slots[ordinal]
        op, payload = action
        if op == "child":
            children = _subexpressions(expr)
            if payload >= len(children):
                return False
            setter(children[payload])
            return True
        setter(ast.IntLiteral(expr.location, payload))
        return True
    return False


# ----------------------------------------------------------------------
# The shrink loop.
# ----------------------------------------------------------------------


def _well_typed(source: str) -> bool:
    try:
        check_program(parse_source(source))
        return True
    except ReproError:
        return False
    except RecursionError:
        return False


def shrink_source(
    source: str,
    signature: Signature,
    config: Optional[OracleConfig] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ShrinkResult:
    """Greedy fixpoint minimization of ``source`` under the constraint
    that the oracle keeps reproducing ``signature``."""
    if config is None:
        config = OracleConfig()
    result = ShrinkResult(source=source)

    verdict = check_source(source, config)
    result.iterations += 1
    if verdict.signature != signature:
        result.reproduced = False
        return result

    current_source = source
    try:
        current = parse_source(source)
    except ReproError:
        # Signature reproduces but the program does not parse (possible
        # only for ``rejected`` signatures) — nothing structural to do.
        return result

    progress = True
    while progress and result.iterations < max_iterations:
        progress = False
        for mutation in _enumerate_mutations(current):
            if result.iterations >= max_iterations:
                break
            candidate = current.clone()
            if not _apply_mutation(candidate, mutation):
                continue
            candidate_source = render_program(candidate)
            if len(candidate_source) >= len(current_source):
                continue
            if not _well_typed(candidate_source):
                continue
            result.iterations += 1
            if check_source(candidate_source, config).signature == signature:
                current = candidate
                current_source = candidate_source
                result.accepted += 1
                progress = True
                break

    result.source = current_source
    return result
