"""The divergence oracle: one program in, one classified verdict out.

For each candidate source the oracle builds two worlds and compares their
observable behavior through :mod:`repro.robustness.differential`:

* **base** — plain lowering + e-SSA, no optimization at all;
* **optimized** — the full compile pipeline (``standard-pipeline``
  worklist suite, optional inlining) followed by guarded ABCD, and
  optionally the certificate checker (``certify=True``) and the Python
  code generator (``codegen=True``) as a third execution backend.

Outcomes are classified into:

``match``                identical value/trap on both sides (the normal case —
                         including programs that *trap identically*);
``value-divergence``     both returned, different values;
``trap-divergence``      a trap fired on one side only, or a different
                         trap/check on each side — the CHOP failure class;
``codegen-divergence``   interpreter and generated code disagree;
``crash``                an internal (non-:class:`ReproError`) exception
                         escaped compile or execution;
``rejected``             the frontend refused the generated program with a
                         :class:`ReproError` — a generator bug, triaged
                         separately from compiler crashes;
``timeout``              the per-program SIGALRM deadline fired;
``fuel-limit``           either side ran out of interpreter fuel (check
                         elimination legitimately changes instruction
                         counts, so fuel races are expected, not findings);
``rollback``/``budget``  annotations on a ``match`` (pass guard rolled
                         back, or a solver budget was exhausted).

The oracle never uses the differential *gate* (`gated_optimize`): the gate
exists to hide divergence from production users, while the oracle's whole
job is to surface it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.passes.manager import SessionStats

from repro.core.abcd import ABCDConfig
from repro.errors import CallDepthExceeded, ReproError, TrapLimitExceeded
from repro.limits import hard_deadline

#: Trap classes that are resource limits, not program semantics: the two
#: sides legitimately burn different amounts of fuel/stack, so a limit
#: trap on either side is classified ``fuel-limit`` rather than compared.
_RESOURCE_TRAPS = (TrapLimitExceeded.__name__, CallDepthExceeded.__name__)
from repro.fuzz.triage import Signature, innermost_repro_frame
from repro.passes.session import CompilationSession
from repro.robustness.differential import ExecutionOutcome, execute_outcome

#: Default interpreter fuel per side.  Generated loops are counted and
#: shallow, so honest programs finish far below this; a fuel race between
#: the two sides is classified ``fuel-limit``, not a divergence.
DEFAULT_FUEL = 400_000

#: Default wall-clock deadline per program (compile + both executions).
DEFAULT_DEADLINE = 10.0


class OracleTimeout(BaseException):
    """The per-program SIGALRM deadline fired.

    A ``BaseException`` so that containment layers under the deadline —
    the pass guard's ``except Exception`` rollback in particular — cannot
    swallow it: a rollback would otherwise disarm the wall clock and let
    a stuck program run to completion as a spurious "match"."""


@contextlib.contextmanager
def program_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Bound one oracle check with :func:`repro.limits.hard_deadline` so a
    pathological program can never hang the campaign.  No-op off the main
    thread or on platforms without ``SIGALRM`` (the fuel bound still
    applies)."""
    with hard_deadline(
        seconds,
        lambda: OracleTimeout(f"program exceeded {seconds:.1f}s deadline"),
    ):
        yield


@dataclass(frozen=True)
class OracleConfig:
    """How the optimized side is built and how runs are bounded."""

    inline: bool = True
    certify: bool = False
    codegen: bool = False
    fuel: int = DEFAULT_FUEL
    deadline: Optional[float] = DEFAULT_DEADLINE


@dataclass
class OracleVerdict:
    """Everything observed about one program."""

    classification: str
    signature: Optional[Signature] = None
    detail: str = ""
    base: Optional[ExecutionOutcome] = None
    optimized: Optional[ExecutionOutcome] = None
    #: Pass-guard rollbacks and budget exhaustions on the optimized side
    #: (benign annotations, surfaced as campaign counters).
    rollbacks: int = 0
    budget_exhausted: int = 0
    certificates_rejected: int = 0
    eliminated_checks: int = 0
    #: The optimized-side session's per-pass stats, for campaign folding.
    stats: Optional["SessionStats"] = None

    @property
    def is_finding(self) -> bool:
        return self.signature is not None


def outcomes_equivalent(base: ExecutionOutcome, optimized: ExecutionOutcome) -> bool:
    """Check-id-insensitive behavioral equality.

    The two worlds are compiled independently and the optimized side may
    inline, which assigns *fresh* check ids to cloned checks — so a trap
    is "the same" when its class and observed values agree, not when its
    id does.  Values, trap class, and (for bounds traps) the failing
    ``kind``/``index``/``length`` triple must all match; messages embed
    check ids and are ignored.
    """
    if (base.trap is None) != (optimized.trap is None):
        return False
    if base.trap is None:
        return base.value == optimized.value
    if base.trap != optimized.trap:
        return False
    return (base.kind, base.index, base.length) == (
        optimized.kind,
        optimized.index,
        optimized.length,
    )


def _outcome_tag(outcome: ExecutionOutcome) -> str:
    if outcome.trap is None:
        return "return"
    if outcome.check_id is not None:
        return f"{outcome.trap}[{outcome.kind}]"
    return outcome.trap


def _crash_verdict(exc: BaseException, stage: str) -> OracleVerdict:
    signature = Signature(
        kind="crash",
        error=type(exc).__name__,
        frame=innermost_repro_frame(exc),
    )
    return OracleVerdict(
        classification="crash",
        signature=signature,
        detail=f"{stage}: {type(exc).__name__}: {exc}",
    )


def check_source(source: str, config: Optional[OracleConfig] = None) -> OracleVerdict:
    """Run one program through the full differential pipeline."""
    if config is None:
        config = OracleConfig()
    try:
        with program_deadline(config.deadline):
            return _check_source(source, config)
    except OracleTimeout as exc:
        return OracleVerdict(
            classification="timeout",
            signature=Signature(kind="timeout", error="OracleTimeout"),
            detail=str(exc),
        )


def _check_source(source: str, config: OracleConfig) -> OracleVerdict:
    # --- Base world: unoptimized e-SSA IR. -----------------------------
    try:
        base_session = CompilationSession()
        base_program = base_session.compile(source, standard_opts=False)
    except ReproError as exc:
        return OracleVerdict(
            classification="rejected",
            signature=Signature(
                kind="rejected",
                error=type(exc).__name__,
                frame=innermost_repro_frame(exc),
            ),
            detail=f"frontend rejected generated program: {exc}",
        )
    except Exception as exc:
        return _crash_verdict(exc, "compile-base")

    # --- Optimized world: standard pipeline + guarded ABCD. ------------
    try:
        abcd_config = ABCDConfig(certify=config.certify)
        session = CompilationSession(config=abcd_config)
        optimized_program = session.compile(
            source, standard_opts=True, inline=config.inline
        )
        report = session.optimize(optimized_program)
    except ReproError as exc:
        # The base world accepted this program, so a ReproError here is an
        # optimizer failure escaping its sandbox, not an input rejection.
        return _crash_verdict(exc, "compile-optimized")
    except Exception as exc:
        return _crash_verdict(exc, "compile-optimized")

    verdict = OracleVerdict(classification="match")
    verdict.stats = session.stats
    verdict.rollbacks = len(session.guard.failures) + report.rollback_count
    verdict.budget_exhausted = report.budget_exhausted_count
    verdict.certificates_rejected = report.certificates_rejected
    verdict.eliminated_checks = report.eliminated_count()

    # --- Execute both worlds. ------------------------------------------
    try:
        base_outcome = execute_outcome(base_program, "main", (), config.fuel)
    except Exception as exc:
        return _crash_verdict(exc, "run-base")
    try:
        opt_outcome = execute_outcome(optimized_program, "main", (), config.fuel)
    except Exception as exc:
        return _crash_verdict(exc, "run-optimized")
    verdict.base = base_outcome
    verdict.optimized = opt_outcome

    if base_outcome.trap in _RESOURCE_TRAPS or opt_outcome.trap in _RESOURCE_TRAPS:
        verdict.classification = "fuel-limit"
        return verdict

    if not outcomes_equivalent(base_outcome, opt_outcome):
        tags = f"{_outcome_tag(base_outcome)}->{_outcome_tag(opt_outcome)}"
        if base_outcome.trap is None and opt_outcome.trap is None:
            kind = "value-divergence"
        else:
            kind = "trap-divergence"
        verdict.classification = kind
        verdict.signature = Signature(kind=kind, error=tags)
        verdict.detail = (
            f"base {base_outcome.describe()}; optimized {opt_outcome.describe()}"
        )
        return verdict

    # --- Optional third backend: generated Python code. ----------------
    if config.codegen:
        codegen_verdict = _check_codegen(optimized_program, opt_outcome)
        if codegen_verdict is not None:
            return codegen_verdict

    return verdict


def _check_codegen(
    optimized_program, opt_outcome: ExecutionOutcome
) -> Optional[OracleVerdict]:
    """Compare the interpreter's outcome against compiled-to-Python
    execution of the same optimized program."""
    from repro.errors import BoundsCheckError, MiniJRuntimeError
    from repro.runtime.codegen import compile_to_python

    try:
        compiled = compile_to_python(optimized_program)
        try:
            result = compiled.run("main", ())
            gen_outcome = ExecutionOutcome(value=result.value)
        except BoundsCheckError as exc:
            gen_outcome = ExecutionOutcome(
                trap=type(exc).__name__,
                trap_message=str(exc),
                check_id=exc.check_id,
                index=exc.index,
                length=exc.length,
                kind=exc.kind,
            )
        except MiniJRuntimeError as exc:
            gen_outcome = ExecutionOutcome(
                trap=type(exc).__name__, trap_message=str(exc)
            )
    except Exception as exc:
        return _crash_verdict(exc, "codegen")

    if outcomes_equivalent(opt_outcome, gen_outcome):
        return None
    tags = f"{_outcome_tag(opt_outcome)}->{_outcome_tag(gen_outcome)}"
    return OracleVerdict(
        classification="codegen-divergence",
        signature=Signature(kind="codegen-divergence", error=tags),
        detail=(
            f"interpreter {opt_outcome.describe()}; "
            f"generated code {gen_outcome.describe()}"
        ),
        base=opt_outcome,
        optimized=gen_outcome,
    )
