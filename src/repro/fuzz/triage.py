"""Signature-based triage: dedupe findings, persist them, replay them.

A campaign over thousands of programs may hit the same compiler bug
thousands of times; what the developer needs is one bucket per root
cause.  The bucket key is a :class:`Signature` — divergence kind plus
exception type plus the innermost ``repro`` frame for crashes — chosen so
that it survives shrinking: the minimizer only accepts a candidate when
the candidate reproduces the *same* signature, which is what keeps a
shrink from sliding off one bug onto a different one.

The :class:`TriageReport` is deliberately timestamp- and path-free so two
campaigns with the same ``--seed-base`` serialize to byte-identical JSON
(the determinism property tested in ``tests/test_fuzz.py``).
"""

from __future__ import annotations

import json
import pathlib
import re
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Outcome classes that represent a finding (a bucket in the report).
FINDING_KINDS = (
    "value-divergence",
    "trap-divergence",
    "codegen-divergence",
    "crash",
    "rejected",
    "timeout",
)

#: Outcome classes that are expected behavior, never triaged.
BENIGN_KINDS = ("match", "fuel-limit")


@dataclass(frozen=True)
class Signature:
    """The deduplication key of one finding."""

    #: One of :data:`FINDING_KINDS`.
    kind: str
    #: Exception class name for crashes/rejections; for divergences the
    #: ``base-outcome->optimized-outcome`` pair (trap names or ``return``).
    error: str
    #: Innermost ``repro`` stack frame (``module.function``) for crashes;
    #: empty for behavioral divergences.
    frame: str = ""

    def key(self) -> str:
        return "|".join((self.kind, self.error, self.frame))

    def slug(self) -> str:
        """A filesystem-safe name for the reproducer file."""
        return re.sub(r"[^A-Za-z0-9_.-]+", "-", self.key()).strip("-").lower()

    @staticmethod
    def parse(key: str) -> "Signature":
        kind, error, frame = (key.split("|", 2) + ["", ""])[:3]
        return Signature(kind=kind, error=error, frame=frame)


def innermost_repro_frame(exc: BaseException) -> str:
    """``module.function`` of the deepest traceback frame inside the
    ``repro`` package — the anchor that keeps one bug in one bucket even
    as the call path above it varies."""
    frames = traceback.extract_tb(exc.__traceback__)
    for summary in reversed(frames):
        path = pathlib.PurePath(summary.filename)
        if "repro" in path.parts:
            index = len(path.parts) - 1 - list(reversed(path.parts)).index("repro")
            module = ".".join(path.parts[index:]).removesuffix(".py")
            return f"{module}:{summary.name}"
    return "<outside-repro>"


@dataclass
class TriageEntry:
    """One deduplicated finding bucket."""

    signature: Signature
    count: int = 0
    #: Generator seeds that hit this bucket (first few, in discovery order).
    seeds: List[int] = field(default_factory=list)
    #: The smallest reproducer seen (post-shrink when --shrink is on).
    reproducer: Optional[str] = None
    shrink_iterations: int = 0
    detail: str = ""

    MAX_SEEDS = 8

    def record(self, seed: int, source: str, detail: str) -> None:
        self.count += 1
        if len(self.seeds) < self.MAX_SEEDS:
            self.seeds.append(seed)
        if self.reproducer is None or len(source) < len(self.reproducer):
            self.reproducer = source
            self.detail = detail


class TriageReport:
    """All buckets of one campaign, serializable to stable JSON."""

    def __init__(self) -> None:
        self.entries: Dict[str, TriageEntry] = {}

    def record(self, signature: Signature, seed: int, source: str, detail: str) -> TriageEntry:
        entry = self.entries.get(signature.key())
        if entry is None:
            entry = self.entries[signature.key()] = TriageEntry(signature)
        entry.record(seed, source, detail)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def total_findings(self) -> int:
        return sum(entry.count for entry in self.entries.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "signatures": [
                {
                    "signature": key,
                    "kind": entry.signature.kind,
                    "error": entry.signature.error,
                    "frame": entry.signature.frame,
                    "count": entry.count,
                    "seeds": entry.seeds,
                    "detail": entry.detail,
                    "shrink_iterations": entry.shrink_iterations,
                    "reproducer": entry.reproducer,
                }
                for key, entry in sorted(self.entries.items())
            ],
            "unique_signatures": len(self.entries),
            "total_findings": self.total_findings(),
        }

    def write(self, path: str) -> None:
        # Atomic (tmp + fsync + rename): a campaign killed mid-write must
        # never leave a torn report behind — CI parses these.
        from repro.store.atomic import atomic_write_text

        atomic_write_text(
            str(path),
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
        )


# ----------------------------------------------------------------------
# Corpus reproducers: tests/fuzz_corpus/<slug>.mj
# ----------------------------------------------------------------------

_HEADER = "// fuzz reproducer — signature: "
_SEED = "// seed: "


def write_reproducer(directory: str, entry: TriageEntry) -> pathlib.Path:
    """Persist one minimized reproducer with its signature in the header,
    so the corpus replayer can assert the signature stays fixed."""
    directory_path = pathlib.Path(directory)
    directory_path.mkdir(parents=True, exist_ok=True)
    path = directory_path / f"{entry.signature.slug()}.mj"
    seed = entry.seeds[0] if entry.seeds else -1
    body = (
        f"{_HEADER}{entry.signature.key()}\n"
        f"{_SEED}{seed}\n"
        f"// {entry.detail}\n"
        f"{entry.reproducer or ''}"
    )
    from repro.store.atomic import atomic_write_text

    atomic_write_text(str(path), body)
    return path


def read_reproducer(path: str) -> tuple:
    """``(signature, source)`` parsed back from a corpus file."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    signature: Optional[Signature] = None
    lines = text.splitlines(keepends=True)
    body_start = 0
    for index, line in enumerate(lines):
        if line.startswith(_HEADER):
            signature = Signature.parse(line[len(_HEADER):].strip())
        if not line.startswith("//") and line.strip():
            body_start = index
            break
    if signature is None:
        raise ValueError(f"{path}: missing signature header")
    return signature, "".join(lines[body_start:])
