"""The ``repro fuzz`` campaign driver.

Ties generator → oracle → shrinker → triage together over a seed range
and folds everything observable into one :class:`CampaignResult`:

* per-classification counters (plus rollback/budget/elimination tallies),
  also surfaced through :class:`~repro.passes.manager.SessionStats` so
  ``--json`` consumers read fuzz campaigns and bench runs the same way;
* a deduplicated :class:`~repro.fuzz.triage.TriageReport`, optionally
  persisted to disk and optionally materialized as minimized reproducers
  under ``tests/fuzz_corpus/``;
* a deterministic JSON payload — same ``seed_base``/``seeds`` in, byte
  identical payload out (wall-clock timings are deliberately excluded).

Each finding bucket is shrunk at most once (on first discovery): later
hits of the same signature only bump its count, so a common bug cannot
consume the whole shrink budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fuzz.generator import DEFAULT_CONFIG, GeneratorConfig, generate_source
from repro.fuzz.oracle import OracleConfig, check_source
from repro.fuzz.shrink import DEFAULT_MAX_ITERATIONS, shrink_source
from repro.fuzz.triage import BENIGN_KINDS, TriageReport, write_reproducer
from repro.passes.manager import SessionStats

#: Classifications that make a campaign fail (exit 1 from the CLI): every
#: one of them is either a miscompile, a compiler crash, a generator bug,
#: or a hang — never expected behavior.
UNEXPLAINED_KINDS = (
    "value-divergence",
    "trap-divergence",
    "codegen-divergence",
    "crash",
    "rejected",
    "timeout",
)

#: Signatures worth shrinking: behavioral findings with a program to
#: minimize.  Timeouts are excluded — re-running a pathological program
#: hundreds of times is exactly what the deadline exists to prevent.
SHRINKABLE_KINDS = (
    "value-divergence",
    "trap-divergence",
    "codegen-divergence",
    "crash",
    "rejected",
)


@dataclass
class CampaignResult:
    """Counters + triage of one fuzzing campaign."""

    seed_base: int
    seeds: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: ``(seed, classification)`` per program, in seed order — the
    #: determinism property compares these across runs.
    verdicts: List[Tuple[int, str]] = field(default_factory=list)
    triage: TriageReport = field(default_factory=TriageReport)
    stats: SessionStats = field(default_factory=SessionStats)
    #: The campaign was cut short by SIGINT/SIGTERM; everything above is
    #: a valid *partial* result (``counters["programs"]`` says how far).
    interrupted: bool = False

    @property
    def unexplained(self) -> int:
        return sum(self.counters.get(kind, 0) for kind in UNEXPLAINED_KINDS)

    def to_json(self) -> Dict[str, Any]:
        """Deterministic payload: no wall-clock values, sorted buckets."""
        return {
            "seed_base": self.seed_base,
            "seeds": self.seeds,
            "interrupted": self.interrupted,
            "counters": dict(sorted(self.counters.items())),
            "unexplained": self.unexplained,
            "triage": self.triage.to_json(),
            "passes": [
                {
                    "name": entry.name,
                    "invocations": entry.invocations,
                    "changes": entry.changes,
                    "rollbacks": entry.rollbacks,
                }
                for entry in self.stats.passes.values()
            ],
        }


def run_campaign(
    seeds: int,
    seed_base: int = 0,
    shrink: bool = False,
    oracle_config: Optional[OracleConfig] = None,
    generator_config: GeneratorConfig = DEFAULT_CONFIG,
    corpus_dir: Optional[str] = None,
    report_path: Optional[str] = None,
    max_shrink_iterations: int = DEFAULT_MAX_ITERATIONS,
    progress: Optional[Callable[[int, str], None]] = None,
) -> CampaignResult:
    """Generate and differentially check ``seeds`` programs.

    ``progress`` (if given) is called with ``(seed, classification)``
    after every program — the CLI uses it for a live stderr ticker.
    """
    if oracle_config is None:
        oracle_config = OracleConfig()
    result = CampaignResult(seed_base=seed_base, seeds=seeds)
    counters = result.counters
    for name in (
        "programs",
        "match",
        "fuel-limit",
        *UNEXPLAINED_KINDS,
        "rollbacks",
        "budget-exhausted",
        "certificates-rejected",
        "eliminated-checks",
        "shrink-iterations",
    ):
        counters[name] = 0

    try:
        _run_seed_loop(
            result,
            seeds,
            seed_base,
            shrink,
            oracle_config,
            generator_config,
            max_shrink_iterations,
            progress,
        )
    except KeyboardInterrupt:
        # A long campaign must be interruptible without losing its triage:
        # mark the result partial and fall through to the normal report /
        # corpus persistence below.  (The CLI maps this to exit code 130.)
        result.interrupted = True

    counters["unique-signatures"] = len(result.triage)
    for name, value in counters.items():
        result.stats.bump(f"fuzz.{name}", value)
    if result.interrupted:
        result.stats.bump("fuzz.interrupted")

    if report_path is not None:
        result.triage.write(report_path)
    if corpus_dir is not None:
        for entry in result.triage.entries.values():
            if entry.signature.kind not in BENIGN_KINDS and entry.reproducer:
                write_reproducer(corpus_dir, entry)
    return result


def _run_seed_loop(
    result: CampaignResult,
    seeds: int,
    seed_base: int,
    shrink: bool,
    oracle_config: OracleConfig,
    generator_config: GeneratorConfig,
    max_shrink_iterations: int,
    progress: Optional[Callable[[int, str], None]],
) -> None:
    counters = result.counters
    for offset in range(seeds):
        seed = seed_base + offset
        source = generate_source(seed, generator_config)
        verdict = check_source(source, oracle_config)
        counters["programs"] += 1
        counters[verdict.classification] = (
            counters.get(verdict.classification, 0) + 1
        )
        counters["rollbacks"] += verdict.rollbacks
        counters["budget-exhausted"] += verdict.budget_exhausted
        counters["certificates-rejected"] += verdict.certificates_rejected
        counters["eliminated-checks"] += verdict.eliminated_checks
        if verdict.stats is not None:
            result.stats.merge(verdict.stats)
        result.verdicts.append((seed, verdict.classification))

        if verdict.signature is not None:
            entry = result.triage.record(
                verdict.signature, seed, source, verdict.detail
            )
            if (
                shrink
                and entry.count == 1
                and verdict.signature.kind in SHRINKABLE_KINDS
            ):
                shrunk = shrink_source(
                    source,
                    verdict.signature,
                    oracle_config,
                    max_iterations=max_shrink_iterations,
                )
                counters["shrink-iterations"] += shrunk.iterations
                entry.shrink_iterations = shrunk.iterations
                if shrunk.reproduced and len(shrunk.source) < len(
                    entry.reproducer or source
                ):
                    entry.reproducer = shrunk.source
        if progress is not None:
            progress(seed, verdict.classification)


def format_summary(result: CampaignResult) -> str:
    """The deterministic human-readable campaign summary."""
    counters = result.counters
    lines = [
        f"fuzz campaign: {counters['programs']} program(s), "
        f"seed base {result.seed_base}"
        + (
            f" — INTERRUPTED after {counters['programs']}/{result.seeds}"
            if result.interrupted
            else ""
        ),
        f"  match: {counters['match']}  fuel-limit: {counters['fuel-limit']}",
        f"  divergences: value {counters['value-divergence']}, "
        f"trap {counters['trap-divergence']}, "
        f"codegen {counters['codegen-divergence']}",
        f"  crashes: {counters['crash']}  rejected: {counters['rejected']}  "
        f"timeouts: {counters['timeout']}",
        f"  rollbacks: {counters['rollbacks']}  "
        f"budget-exhausted: {counters['budget-exhausted']}  "
        f"eliminated checks: {counters['eliminated-checks']}",
        f"  shrink iterations: {counters['shrink-iterations']}",
        f"  unique signatures: {counters['unique-signatures']}",
    ]
    if counters.get("certificates-rejected"):
        lines.append(
            f"  certificates rejected: {counters['certificates-rejected']}"
        )
    for key, entry in sorted(result.triage.entries.items()):
        lines.append(
            f"  [{entry.count}x] {key} (seeds {entry.seeds}) {entry.detail}"
        )
    verdict_line = (
        "no unexplained divergences"
        if result.unexplained == 0
        else f"{result.unexplained} UNEXPLAINED finding(s)"
    )
    lines.append(verdict_line)
    return "\n".join(lines)
