"""Differential fuzzing: generate MiniJ programs, hunt for miscompiles.

The subsystem closes the gap the hand-written corpus leaves open: instead
of proving the *defenses* work on 15 curated programs, it machine-generates
thousands of ABCD-relevant programs and differentially executes each one,
unoptimized IR vs. the full ``standard-pipeline`` (plus, optionally, the
certificate checker and the Python code generator).

* :mod:`repro.fuzz.generator` — seeded, fully deterministic random
  programs biased toward the shapes ABCD reasons about;
* :mod:`repro.fuzz.oracle` — per-program compile/execute/compare with
  outcome classification and SIGALRM deadline protection;
* :mod:`repro.fuzz.shrink` — AST-level delta debugging that minimizes a
  failing program while its triage signature stays fixed;
* :mod:`repro.fuzz.triage` — signature-based deduplication, the
  persistent JSON triage report, and the ``tests/fuzz_corpus/`` writer;
* :mod:`repro.fuzz.campaign` — the ``repro fuzz`` driver tying the four
  together and folding counters into :class:`SessionStats`.
"""

from repro.fuzz.campaign import CampaignResult, run_campaign
from repro.fuzz.generator import GeneratorConfig, generate_source
from repro.fuzz.oracle import OracleConfig, OracleVerdict, check_source
from repro.fuzz.shrink import ShrinkResult, shrink_source
from repro.fuzz.triage import Signature, TriageReport

__all__ = [
    "CampaignResult",
    "GeneratorConfig",
    "OracleConfig",
    "OracleVerdict",
    "ShrinkResult",
    "Signature",
    "TriageReport",
    "check_source",
    "generate_source",
    "run_campaign",
    "shrink_source",
]
