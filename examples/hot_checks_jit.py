#!/usr/bin/env python3
"""The dynamic-compilation scenario: optimize only the *hot* checks.

ABCD is demand-driven: "it can be applied to a set of frequently executed
(hot) bounds checks, which makes it suitable for the dynamic-compilation
setting" (abstract).  This example emulates a JIT:

1. run the program once with profiling (the interpreter's "baseline tier");
2. pick the checks covering 90% of dynamic check executions;
3. run ABCD on just those — a fraction of the compile-time work for
   almost all of the benefit.

Run:  python examples/hot_checks_jit.py
"""

from repro.core.abcd import ABCDConfig, optimize_program
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.profiler import collect_profile

SOURCE = """
fn hot_kernel(a: int[], rounds: int): int {
  let acc: int = 0;
  for (let r: int = 0; r < rounds; r = r + 1) {
    for (let i: int = 0; i < len(a); i = i + 1) {
      acc = (acc + a[i]) % 1000000007;
    }
  }
  return acc;
}

fn cold_setup(a: int[]): void {
  // Runs once: its checks are cold.
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i * 7 % 31;
  }
}

fn main(): int {
  let a: int[] = new int[256];
  cold_setup(a);
  return hot_kernel(a, 40);
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    baseline = clone_program(program)

    # Tier 0: profile.
    profile = collect_profile(program, "main")
    total_checks = sum(profile.check_counts.values())
    print(f"profiling run: {total_checks} dynamic checks, "
          f"{len(profile.check_counts)} static check sites")

    # Tier 1: demand-driven ABCD on the hot set only.
    hot = set(profile.hottest_fraction(0.90))
    print(f"hot set: {len(hot)} checks cover 90% of executions")
    report = optimize_program(program, ABCDConfig(hot_checks=hot))
    print(f"analyzed {report.analyzed} checks "
          f"(instead of {len(profile.check_counts)}), "
          f"eliminated {report.eliminated_count()}, "
          f"total prove() steps: {report.total_steps}")

    base = run(baseline, "main")
    opt = run(program, "main")
    assert base.value == opt.value
    removed = base.stats.total_checks - opt.stats.total_checks
    print(f"\ndynamic checks: {base.stats.total_checks} -> "
          f"{opt.stats.total_checks} "
          f"({removed / base.stats.total_checks:.1%} removed by analyzing "
          f"only the hot sites)")

    # Contrast: exhaustive analysis of every check.
    everything = clone_program(baseline)
    full_report = optimize_program(everything, ABCDConfig())
    full = run(everything, "main")
    print(f"full analysis for reference: {full_report.analyzed} checks "
          f"analyzed, {full_report.total_steps} steps, "
          f"{full.stats.total_checks} dynamic checks remain")


if __name__ == "__main__":
    main()
