#!/usr/bin/env python3
"""The paper's running example, step by step (Figures 1, 3, 4, 5).

Shows, for the bidirectional bubble sort fragment:

1. the e-SSA form (compare with the paper's Figure 3);
2. the inequality graph (Figure 4), optionally exported to Graphviz;
3. each bounds check's demandProve query, its verdict, and step count;
4. the headline result: all checks of the sort are eliminated.

Run:  python examples/bubblesort_walkthrough.py [--dot out_dir]
"""

import argparse
import pathlib

from repro.bench.corpus import get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.core.constraints import build_graphs
from repro.core.graph import const_node, len_node, var_node
from repro.core.solver import DemandProver
from repro.ir.instructions import CheckLower, CheckUpper, Var
from repro.ir.printer import format_function
from repro.pipeline import clone_program, compile_source, run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dot", metavar="DIR", help="write Graphviz files here")
    args = parser.parse_args()

    program = compile_source(get("biDirBubbleSort").source())
    baseline = clone_program(program)
    sort_fn = program.function("sort")

    print("=" * 72)
    print("1. e-SSA form of sort() — compare with the paper's Figure 3")
    print("=" * 72)
    print(format_function(sort_fn))

    print()
    print("=" * 72)
    print("2. The inequality graph (Figure 4)")
    print("=" * 72)
    bundle = build_graphs(sort_fn)
    print(f"upper graph: {bundle.upper!r}")
    print(f"lower graph: {bundle.lower!r}")
    print("sample upper-bound constraints (edge u -> v / w means v <= u + w):")
    for edge in list(bundle.upper.edges())[:12]:
        print(f"  {edge}")
    if args.dot:
        out = pathlib.Path(args.dot)
        out.mkdir(parents=True, exist_ok=True)
        (out / "inequality_upper.dot").write_text(bundle.upper.to_dot())
        (out / "inequality_lower.dot").write_text(bundle.lower.to_dot())
        from repro.ir.dot import cfg_to_dot

        (out / "sort_cfg.dot").write_text(cfg_to_dot(sort_fn))
        print(f"(wrote Graphviz files to {out}/)")

    print()
    print("=" * 72)
    print("3. demandProve per check (Figure 5)")
    print("=" * 72)
    for label in sort_fn.reachable_blocks():
        for instr in sort_fn.blocks[label].body:
            if isinstance(instr, CheckUpper) and isinstance(instr.index, Var):
                graph = bundle.upper
                source = len_node(instr.array)
                target = var_node(instr.index.name)
                budget = -1
                query = f"{target} - len <= -1"
            elif isinstance(instr, CheckLower) and isinstance(instr.index, Var):
                graph = bundle.lower
                source = const_node(0)
                target = var_node(instr.index.name)
                budget = 0
                query = f"{target} >= 0"
            else:
                continue
            prover = DemandProver(graph)
            outcome = prover.demand_prove(source, target, budget)
            print(
                f"  check #{instr.check_id:<3} {query:<22} -> "
                f"{outcome.result.name:<8} in {outcome.steps} steps"
            )

    print()
    print("=" * 72)
    print("4. Elimination and execution")
    print("=" * 72)
    report = optimize_program(program, ABCDConfig())
    sort_checks = [a for a in report.analyses if a.function == "sort"]
    print(
        f"sort(): {sum(a.eliminated for a in sort_checks)}"
        f"/{len(sort_checks)} checks eliminated"
    )
    base = run(baseline, "main")
    opt = run(program, "main")
    assert base.value == opt.value
    print(f"dynamic checks: {base.stats.total_checks} -> {opt.stats.total_checks}")
    print(f"result unchanged: {opt.value}")


if __name__ == "__main__":
    main()
