#!/usr/bin/env python3
"""Partial redundancy elimination of bounds checks (paper, Section 6).

A loop-invariant check cannot be proven redundant on *all* paths — it
either fails on the first iteration or never fails.  ABCD's PRE extension
hoists a *compensating* check onto the loop-entry edge, guided by the
execution profile, and guards the original so exceptions still fire at the
right place even when the speculation was wrong.

Run:  python examples/partial_redundancy.py
"""

from repro.core.abcd import ABCDConfig, optimize_program
from repro.ir.instructions import SpeculativeCheck
from repro.ir.printer import format_function
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.profiler import collect_profile
from repro.runtime.values import ArrayValue

SOURCE = """
fn sample(data: int[], probe: int, rounds: int): int {
  // data[probe] is loop-invariant: `probe` is a parameter, so no full
  // redundancy proof exists — but one check before the loop suffices.
  let acc: int = 0;
  let r: int = 0;
  while (r < rounds) {
    acc = acc + data[probe];
    r = r + 1;
  }
  return acc;
}

fn main(): int {
  let data: int[] = new int[64];
  for (let i: int = 0; i < len(data); i = i + 1) {
    data[i] = i;
  }
  return sample(data, 17, 1000);
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    baseline = clone_program(program)

    profile = collect_profile(program, "main")
    report = optimize_program(program, ABCDConfig(pre=True), profile)

    pre = [a for a in report.analyses if a.pre_applied]
    print(f"PRE transformed {len(pre)} check(s):")
    for analysis in pre:
        print(f"  check #{analysis.check_id} ({analysis.kind}) in "
              f"{analysis.function}/{analysis.block}: "
              f"{analysis.pre_insertions} compensating insertion(s)")

    print("\nsample() after the transformation "
          "(note speculate/guard instructions):")
    print(format_function(program.function("sample")))

    base = run(baseline, "main")
    opt = run(program, "main")
    assert base.value == opt.value
    survived = opt.stats.total_checks + opt.stats.speculative_checks
    print(f"\ndynamic checks: {base.stats.total_checks} -> {survived} "
          f"(of which speculative: {opt.stats.speculative_checks})")

    # The speculation-failure path: call the kernel with an out-of-range
    # probe under a guard that skips the access; the compensating check
    # fails *spuriously*, the guard flag rises, and behaviour is identical.
    print("\nspeculation-failure recovery:")
    big = ArrayValue(64)
    ok = run(program, "sample", [big, 17, 3])
    print(f"  in-range probe:  value={ok.value}, "
          f"speculation failures={ok.stats.speculation_failures}")
    from repro.errors import BoundsCheckError

    try:
        run(program, "sample", [big, 99, 3])
    except BoundsCheckError as exc:
        print(f"  out-of-range probe: raises at the original check "
              f"(#{exc.check_id}), exactly like the unoptimized program")


if __name__ == "__main__":
    main()
