#!/usr/bin/env python3
"""Quickstart: compile a MiniJ program, run ABCD, compare dynamic checks.

Run:  python examples/quickstart.py
"""

from repro import abcd, clone_program, compile_source, run

SOURCE = """
fn sum_window(a: int[], half: int): int {
  // Every check below is provable: the loop is bounded by len(a) and the
  // offset accesses stay within the windowed bound.
  let total: int = 0;
  let n: int = len(a);
  for (let i: int = 0; i < n - 1; i = i + 1) {
    total = total + a[i] + a[i + 1];
  }
  return total;
}

fn main(): int {
  let a: int[] = new int[100];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
  }
  return sum_window(a, 50);
}
"""


def main() -> None:
    # 1. Compile: parse -> type check -> lower to IR with explicit bounds
    #    checks -> e-SSA (π nodes) -> standard optimizations.
    program = compile_source(SOURCE)
    baseline = clone_program(program)

    # 2. Optimize: build the inequality graphs and run demandProve on each
    #    check (paper, Figure 2 + Figure 5).
    report = abcd(program)
    print("=== ABCD report ===")
    print(f"checks analyzed:    {report.analyzed}")
    print(f"checks eliminated:  {report.eliminated_count()}")
    print(f"  upper bounds:     {report.eliminated_count('upper')}"
          f" / {report.analyzed_count('upper')}")
    print(f"  lower bounds:     {report.eliminated_count('lower')}"
          f" / {report.analyzed_count('lower')}")
    print(f"mean prove() steps: {report.mean_steps:.1f} per check")

    # 3. Execute both versions: same answer, fewer dynamic checks.
    base_result = run(baseline, "main")
    opt_result = run(program, "main")
    assert base_result.value == opt_result.value
    print("\n=== dynamic behaviour ===")
    print(f"result:               {opt_result.value}")
    print(f"checks (unoptimized): {base_result.stats.total_checks}")
    print(f"checks (optimized):   {opt_result.stats.total_checks}")
    saved = base_result.stats.cycles - opt_result.stats.cycles
    print(f"cycles saved:         {saved} "
          f"({saved / base_result.stats.cycles:.1%})")


if __name__ == "__main__":
    main()
