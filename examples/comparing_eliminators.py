#!/usr/bin/env python3
"""Compare the three bounds-check eliminators on one program.

* **ABCD** (this paper): sparse demand-driven difference constraints;
* **value-range analysis** (Harrison/Patterson style): numeric intervals —
  no symbolic lengths, no partial redundancy;
* **loop versioning** (Midkiff et al. style): fast/slow loop copies behind
  a run-time bound test — covers inductive loops only, duplicates code.

Run:  python examples/comparing_eliminators.py
"""

from repro.baselines.loop_versioning import version_program_loops
from repro.baselines.range_analysis import eliminate_program_with_ranges
from repro.core.abcd import ABCDConfig, optimize_program
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.lowering import lower_program
from repro.opt import run_standard_pipeline
from repro.pipeline import compile_source, run
from repro.ssa.essa import construct_essa

SOURCE = """
fn smooth(signal: int[], out: int[]): void {
  // Averaging filter: classic inductive loop with offset accesses.
  let n: int = len(signal);
  if (len(out) < n) {
    return;
  }
  for (let i: int = 1; i < n - 1; i = i + 1) {
    out[i] = (signal[i - 1] + signal[i] + signal[i + 1]) / 3;
  }
}

fn main(): int {
  let signal: int[] = new int[256];
  let out: int[] = new int[256];
  for (let i: int = 0; i < len(signal); i = i + 1) {
    signal[i] = (i * 17) % 64;
  }
  for (let round: int = 0; round < 4; round = round + 1) {
    smooth(signal, out);
  }
  let sum: int = 0;
  for (let i: int = 0; i < len(out); i = i + 1) {
    sum = (sum + out[i]) % 1000000007;
  }
  return sum;
}
"""


def size_of(program) -> int:
    return sum(1 for fn in program.functions.values() for _ in fn.all_instructions())


def main() -> None:
    plain = compile_source(SOURCE)
    base = run(plain, "main")
    base_size = size_of(plain)
    print(f"unoptimized: {base.stats.total_checks} dynamic checks, "
          f"{base_size} instructions, result {base.value}")
    print()
    print(f"{'approach':<16}{'dyn checks':>12}{'removed':>9}{'code size':>11}")

    # ABCD.
    abcd_program = compile_source(SOURCE)
    optimize_program(abcd_program, ABCDConfig())
    abcd_run = run(abcd_program, "main")
    assert abcd_run.value == base.value
    print(f"{'ABCD':<16}{abcd_run.stats.total_checks:>12}"
          f"{1 - abcd_run.stats.total_checks / base.stats.total_checks:>9.1%}"
          f"{size_of(abcd_program):>11}")

    # Value-range analysis.
    range_program = compile_source(SOURCE, standard_opts=False)
    eliminate_program_with_ranges(range_program)
    range_run = run(range_program, "main")
    assert range_run.value == base.value
    print(f"{'value-range':<16}{range_run.stats.total_checks:>12}"
          f"{1 - range_run.stats.total_checks / base.stats.total_checks:>9.1%}"
          f"{size_of(range_program):>11}")

    # Loop versioning.
    ast = parse_source(SOURCE)
    info = check_program(ast)
    versioned = lower_program(ast, info)
    version_program_loops(versioned)
    for fn in versioned.functions.values():
        construct_essa(fn)
        run_standard_pipeline(fn)
    versioned_run = run(versioned, "main")
    assert versioned_run.value == base.value
    print(f"{'loop versioning':<16}{versioned_run.stats.total_checks:>12}"
          f"{1 - versioned_run.stats.total_checks / base.stats.total_checks:>9.1%}"
          f"{size_of(versioned):>11}")

    print("\nABCD removes the checks *and* shrinks the code; versioning pays")
    print("with duplicated loops; numeric ranges miss the symbolic bounds.")


if __name__ == "__main__":
    main()
