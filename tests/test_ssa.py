"""SSA construction, e-SSA (π-insertion), and destruction tests."""

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.instructions import Phi, Pi, Var
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_function, verify_program
from repro.runtime.interpreter import run_program
from repro.ssa.construct import base_name, construct_ssa
from repro.ssa.destruct import destruct_ssa
from repro.ssa.essa import construct_essa, insert_pi_nodes, pi_assignments


def lower(source: str):
    ast = parse_source(source)
    info = check_program(ast)
    return lower_program(ast, info)


LOOP_SRC = """
fn main(): int {
  let total: int = 0;
  let i: int = 0;
  while (i < 10) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
"""

DIAMOND_SRC = """
fn main(): int {
  let x: int = 0;
  let c: int = 7;
  if (c > 3) {
    x = 1;
  } else {
    x = 2;
  }
  return x;
}
"""


class TestBaseName:
    def test_strips_version(self):
        assert base_name("st.2") == "st"

    def test_no_version_unchanged(self):
        assert base_name("limit") == "limit"

    def test_temp_names(self):
        assert base_name("%t3.11") == "%t3"

    def test_dotted_but_nonnumeric_suffix(self):
        assert base_name("weird.name") == "weird.name"


class TestSSAConstruction:
    def test_loop_variable_gets_phi(self):
        program = lower(LOOP_SRC)
        fn = program.function("main")
        construct_ssa(fn)
        verify_function(fn)
        phis = [i for i in fn.all_instructions() if isinstance(i, Phi)]
        merged = {base_name(p.dest) for p in phis}
        assert "i" in merged and "total" in merged

    def test_diamond_merge_gets_phi(self):
        fn = lower(DIAMOND_SRC).function("main")
        construct_ssa(fn)
        verify_function(fn)
        phis = [i for i in fn.all_instructions() if isinstance(i, Phi)]
        assert any(base_name(p.dest) == "x" for p in phis)

    def test_single_assignment_property(self):
        fn = lower(LOOP_SRC).function("main")
        construct_ssa(fn)
        defs = [i.defs() for i in fn.all_instructions() if i.defs()]
        assert len(defs) == len(set(defs))

    def test_params_renamed(self):
        program = lower("fn f(a: int): int { return a + 1; }")
        fn = program.function("f")
        construct_ssa(fn)
        assert fn.params == ["a.0"]

    def test_pruned_no_dead_phis(self):
        # x is dead after the if, so no φ for it should be placed.
        src = """
fn main(): int {
  let c: int = 1;
  if (c > 0) {
    let x: int = 1;
    c = c + x;
  }
  return c;
}
"""
        fn = lower(src).function("main")
        construct_ssa(fn)
        phis = [i for i in fn.all_instructions() if isinstance(i, Phi)]
        assert all(base_name(p.dest) != "x" for p in phis)

    def test_execution_preserved(self):
        program = lower(LOOP_SRC)
        expected = run_program(program, "main").value
        for fn in program.functions.values():
            construct_ssa(fn)
        assert run_program(program, "main").value == expected
        assert expected == 45

    def test_double_construction_rejected(self):
        fn = lower(LOOP_SRC).function("main")
        construct_ssa(fn)
        with pytest.raises(ValueError):
            construct_ssa(fn)

    def test_phi_incomings_cover_predecessors(self):
        fn = lower(LOOP_SRC).function("main")
        construct_ssa(fn)
        preds = fn.predecessors()
        for label, block in fn.blocks.items():
            for phi in block.phis:
                assert set(phi.incomings) == set(preds[label])


class TestPiInsertion:
    def test_pi_after_checks(self):
        src = "fn f(a: int[], i: int): int { return a[i]; }"
        fn = lower(src).function("f")
        insert_pi_nodes(fn)
        pis = [i for i in fn.all_instructions() if isinstance(i, Pi)]
        rels = {p.predicate.rel for p in pis}
        assert "ge" in rels  # from checklower
        assert "lt" in rels  # from checkupper
        arraylen_pis = [p for p in pis if p.predicate.arraylen_of is not None]
        assert len(arraylen_pis) == 1

    def test_pi_on_both_branch_edges(self):
        src = """
fn f(x: int, y: int): int {
  if (x < y) {
    return 1;
  }
  return 0;
}
"""
        fn = lower(src).function("f")
        insert_pi_nodes(fn)
        pis = [i for i in fn.all_instructions() if isinstance(i, Pi)]
        rels = sorted(p.predicate.rel for p in pis)
        # true edge: x lt y, y gt x; false edge: x ge y, y le x.
        assert rels == ["ge", "gt", "le", "lt"]

    def test_no_pi_for_constant_operand(self):
        src = """
fn f(x: int): int {
  if (x < 10) {
    return 1;
  }
  return 0;
}
"""
        fn = lower(src).function("f")
        insert_pi_nodes(fn)
        pis = [i for i in fn.all_instructions() if isinstance(i, Pi)]
        # Only x gets πs (on both edges), the constant does not.
        assert len(pis) == 2
        assert all(p.src == "x" for p in pis)

    def test_ne_comparison_gets_pi_only_on_false_edge(self):
        src = """
fn f(x: int, y: int): int {
  if (x != y) {
    return 1;
  }
  return 0;
}
"""
        fn = lower(src).function("f")
        insert_pi_nodes(fn)
        pis = [i for i in fn.all_instructions() if isinstance(i, Pi)]
        # != carries no constraint on the true edge; == on the false edge.
        assert {p.predicate.rel for p in pis} == {"eq"}

    def test_requires_pre_ssa(self):
        fn = lower(LOOP_SRC).function("main")
        construct_ssa(fn)
        with pytest.raises(ValueError):
            insert_pi_nodes(fn)


class TestESSA:
    def test_essa_form_flag(self):
        fn = lower(LOOP_SRC).function("main")
        construct_essa(fn)
        assert fn.ssa_form == "essa"
        verify_function(fn)

    def test_pi_assignments_helper(self):
        src = "fn f(a: int[], i: int): int { return a[i]; }"
        fn = lower(src).function("f")
        construct_essa(fn)
        pis = pi_assignments(fn)
        assert len(pis) >= 2
        assert all(name == pi.dest for name, pi in pis.items())

    def test_uses_after_check_flow_through_pi(self):
        # The load's index must be the π'd name, not the raw one
        # ("the constraint C5 must be expressed on the new name").
        src = "fn f(a: int[], i: int): int { return a[i]; }"
        fn = lower(src).function("f")
        construct_essa(fn)
        from repro.ir.instructions import ArrayLoad, CheckUpper

        load = next(i for i in fn.all_instructions() if isinstance(i, ArrayLoad))
        check = next(i for i in fn.all_instructions() if isinstance(i, CheckUpper))
        assert isinstance(load.index, Var) and isinstance(check.index, Var)
        assert load.index.name != check.index.name
        pis = pi_assignments(fn)
        assert load.index.name in pis

    def test_execution_preserved(self, bubble_source):
        program = lower(bubble_source)
        expected = run_program(program, "main").value
        for fn in program.functions.values():
            construct_essa(fn)
        verify_program(program)
        assert run_program(program, "main").value == expected

    def test_branch_pi_predicates_reference_each_other_or_originals(self):
        src = """
fn f(x: int, y: int): int {
  if (x < y) {
    return x;
  }
  return y;
}
"""
        fn = lower(src).function("f")
        construct_essa(fn)
        pis = pi_assignments(fn)
        for pi in pis.values():
            if pi.predicate.other is not None and isinstance(pi.predicate.other, Var):
                # Predicate operands must be defined names.
                defined = {i.defs() for i in fn.all_instructions()} | set(fn.params)
                assert pi.predicate.other.name in defined


class TestDestruction:
    def test_destruct_removes_phis_and_pis(self, bubble_source):
        program = lower(bubble_source)
        for fn in program.functions.values():
            construct_essa(fn)
            destruct_ssa(fn)
            assert fn.ssa_form == "none"
            for instr in fn.all_instructions():
                assert not isinstance(instr, (Phi, Pi))

    def test_destruct_preserves_behaviour(self, bubble_source):
        program = lower(bubble_source)
        expected = run_program(program, "main").value
        for fn in program.functions.values():
            construct_essa(fn)
        mid = run_program(program, "main").value
        for fn in program.functions.values():
            destruct_ssa(fn)
        final = run_program(program, "main").value
        assert expected == mid == final

    def test_swap_problem_handled(self):
        # Two φs in one block reading each other's destinations: the
        # parallel-copy sequencing must introduce a temporary.
        src = """
fn main(): int {
  let a: int = 1;
  let b: int = 2;
  let i: int = 0;
  while (i < 5) {
    let t: int = a;
    a = b;
    b = t;
    i = i + 1;
  }
  return a * 10 + b;
}
"""
        program = lower(src)
        expected = run_program(program, "main").value
        for fn in program.functions.values():
            construct_ssa(fn)
        from repro.opt import run_standard_pipeline

        for fn in program.functions.values():
            run_standard_pipeline(fn)  # turns the swap into direct φ cycles
            destruct_ssa(fn)
        assert run_program(program, "main").value == expected
