"""Tests for the persistent certificate store (``src/repro/store/``).

Covers the cache-key contract (what must hit, what must miss), the
atomic write protocol and its crash recovery, the zero-trust load ladder
rung by rung, every registered disk fault's exact containment, the
byte-identity guarantee (a hit's program is byte-identical to a fresh
certified compile), the "no load without a passing re-check" invariant,
and a property sweep over fuzz-generated programs.
"""

from __future__ import annotations

import json

import pytest

from repro.core.abcd import ABCDConfig
from repro.ir.printer import format_program
from repro.robustness.faults import CORRUPTING_DISK_FAULTS, DISK_FAULTS
from repro.store import (
    CertStore,
    Elimination,
    EntryError,
    StoreEntry,
    cached_optimize_source,
    decode_entry,
    encode_entry,
    store_fingerprint,
)
from repro.store.atomic import atomic_write_bytes
from repro.store.fingerprint import config_key, source_structure_hash

SUM_SOURCE = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""

# The same program with insignificant edits: whitespace, comments, and
# blank lines — token structure is untouched.
SUM_SOURCE_RESPACED = """
// a comment the key must not see
fn main(): int {
    let a: int[]   = new int[8];
    let s: int = 0;

    for (let i: int = 0; i < len(a); i = i + 1) {
        a[i] = i;   // accumulate
        s = s + a[i];
    }
    return s;
}
"""

# One structural token differs (array length 9, not 8).
SUM_SOURCE_EDITED = SUM_SOURCE.replace("new int[8]", "new int[9]")


def store_at(tmp_path) -> CertStore:
    return CertStore(tmp_path / "cache")


def populate(store: CertStore, source: str = SUM_SOURCE):
    """One cold certified compile into ``store``; returns (outcome, fp)."""
    outcome = cached_optimize_source(store, source)
    assert outcome.status == "miss-stored", outcome.unstored_reason
    return outcome, outcome.fingerprint


# ----------------------------------------------------------------------
# Cache-key semantics.
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_whitespace_and_comments_do_not_change_the_key(self):
        assert source_structure_hash(SUM_SOURCE) == source_structure_hash(
            SUM_SOURCE_RESPACED
        )
        assert store_fingerprint(SUM_SOURCE, ABCDConfig()) == store_fingerprint(
            SUM_SOURCE_RESPACED, ABCDConfig()
        )

    def test_structural_edit_changes_the_key(self):
        assert store_fingerprint(SUM_SOURCE, ABCDConfig()) != store_fingerprint(
            SUM_SOURCE_EDITED, ABCDConfig()
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("pre", True),
            ("gvn_mode", "off"),
            ("upper", False),
            ("lower", False),
            ("allocation_facts", False),
            ("solver_backend", "closure"),
            ("solver_backend", "hybrid"),
        ],
    )
    def test_semantic_config_flags_change_the_key(self, field, value):
        base = ABCDConfig()
        changed = ABCDConfig()
        setattr(changed, field, value)
        assert store_fingerprint(SUM_SOURCE, base) != store_fingerprint(
            SUM_SOURCE, changed
        )

    @pytest.mark.parametrize("field", ["certify", "strict", "certify_quarantine"])
    def test_checking_only_flags_do_not_change_the_key(self, field):
        # These flags change how much checking happens, never what code
        # comes out — a certified entry must serve an uncertified caller.
        base = ABCDConfig()
        changed = ABCDConfig()
        setattr(changed, field, not getattr(changed, field))
        assert config_key(base) == config_key(changed)

    def test_pipeline_selection_changes_the_key(self):
        config = ABCDConfig()
        plain = store_fingerprint(SUM_SOURCE, config)
        assert plain != store_fingerprint(SUM_SOURCE, config, standard_opts=False)
        assert plain != store_fingerprint(SUM_SOURCE, config, inline=True)

    def test_profile_changes_the_key(self):
        from repro.runtime.profiler import Profile

        config = ABCDConfig()
        profile = Profile()
        profile.block_counts[("main", "entry")] = 10
        assert store_fingerprint(SUM_SOURCE, config) != store_fingerprint(
            SUM_SOURCE, config, profile=profile
        )


class TestCacheKeyBehavior:
    def test_hit_and_miss_follow_the_key(self, tmp_path):
        store = store_at(tmp_path)
        populate(store)
        # Insignificant edit: hit.  Structural edit: miss.
        assert cached_optimize_source(store, SUM_SOURCE_RESPACED).hit
        assert not cached_optimize_source(store, SUM_SOURCE_EDITED).hit

    def test_config_change_misses(self, tmp_path):
        store = store_at(tmp_path)
        populate(store)
        changed = ABCDConfig()
        changed.gvn_mode = "off"
        assert not cached_optimize_source(store, SUM_SOURCE, config=changed).hit

    def test_solver_backend_change_misses(self, tmp_path):
        # Demand- and closure-produced entries must never alias: an
        # aliased hit would mask a backend divergence instead of
        # surfacing it at compile time.
        store = store_at(tmp_path)
        populate(store)
        for backend in ("closure", "hybrid"):
            changed = ABCDConfig(solver_backend=backend)
            assert not cached_optimize_source(
                store, SUM_SOURCE, config=changed
            ).hit, backend

    def test_hit_is_byte_identical_to_fresh_compile(self, tmp_path):
        store = store_at(tmp_path)
        cold, _ = populate(store)
        warm = cached_optimize_source(store, SUM_SOURCE)
        assert warm.hit
        assert format_program(warm.program) == format_program(cold.program)

    def test_invariant_holds(self, tmp_path):
        store = store_at(tmp_path)
        populate(store)
        cached_optimize_source(store, SUM_SOURCE)
        assert store.counters.get("store.hits") == 1
        assert store.invariant_violations() == 0


# ----------------------------------------------------------------------
# Atomic writes and crash recovery.
# ----------------------------------------------------------------------


class TestAtomicAndRecovery:
    def test_atomic_write_leaves_no_temporary(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"payload", tmp_dir=str(tmp_path))
        assert target.read_bytes() == b"payload"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_recovery_scan_deletes_stray_temporaries(self, tmp_path):
        store = store_at(tmp_path)
        populate(store)
        stray = store.tmp_dir / "killed-writer.tmp"
        stray.write_bytes(b'{"fingerprint":"dea')
        reopened = CertStore(store.root)
        assert not stray.exists()
        assert reopened.counters.get("store.recovered_tmp") == 1
        # The committed entry survived the fake crash.
        assert reopened.load(
            store_fingerprint(SUM_SOURCE, ABCDConfig()), ABCDConfig()
        ).hit

    def test_put_failure_is_contained(self, tmp_path):
        store = store_at(tmp_path)
        bad = StoreEntry(fingerprint="ab" * 32, ir="", eliminations={}, meta={})
        # The shard path is occupied by a plain file, so the write cannot
        # land: put must return False, never raise.
        (store.objects_dir / "ab").write_bytes(b"not a directory")
        assert store.put(bad) is False
        assert store.counters.get("store.put_errors") == 1


# ----------------------------------------------------------------------
# The envelope rungs.
# ----------------------------------------------------------------------


class TestEntryEnvelope:
    def entry(self):
        return StoreEntry(
            fingerprint="cd" * 32,
            ir="fn main() {}",
            eliminations={},
            meta={"eliminated": 0},
        )

    def test_round_trip(self):
        entry = self.entry()
        decoded = decode_entry(encode_entry(entry))
        assert decoded.fingerprint == entry.fingerprint
        assert decoded.ir == entry.ir

    def reason_of(self, data: bytes) -> str:
        with pytest.raises(EntryError) as excinfo:
            decode_entry(data)
        return excinfo.value.reason

    def test_rung_classification(self):
        good = encode_entry(self.entry())
        assert self.reason_of(good[: len(good) // 2]) == "truncated"
        assert self.reason_of(good[:-1]) == "truncated"
        flipped = bytearray(good)
        flipped[10] ^= 0x20
        assert self.reason_of(bytes(flipped)) == "checksum"

    def test_schema_drift(self):
        import hashlib

        payload = json.dumps(
            {"schema": 999, "fingerprint": "x", "ir": "", "eliminations": {},
             "meta": {}},
            sort_keys=True, separators=(",", ":"),
        ).encode()
        digest = hashlib.sha256(payload).hexdigest().encode()
        assert self.reason_of(payload + b"\n#sha256:" + digest + b"\n") == "schema"

    def test_shape_violation(self):
        entry = self.entry()
        entry.eliminations = {
            "main": [
                Elimination(
                    check_id=0, kind="upper", array="a", target={}, witness={}
                )
            ]
        }
        data = encode_entry(entry)
        # Re-encode with a string check_id inside a *valid* envelope.
        obj = json.loads(data[: data.rfind(b"\n#sha256:")].decode())
        obj["eliminations"]["main"][0]["check_id"] = "zero"
        import hashlib

        payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
        digest = hashlib.sha256(payload).hexdigest().encode()
        assert self.reason_of(payload + b"\n#sha256:" + digest + b"\n") == "shape"


# ----------------------------------------------------------------------
# Disk faults: every registered fault's exact containment.
# ----------------------------------------------------------------------


class TestDiskFaults:
    @pytest.mark.parametrize(
        "name",
        [n for n, s in sorted(DISK_FAULTS.items()) if s.mode == "at-rest"],
    )
    def test_at_rest_fault_contained(self, tmp_path, name):
        spec = DISK_FAULTS[name]
        store = store_at(tmp_path)
        _, fingerprint = populate(store)
        spec.corrupt(store.entry_path(fingerprint))
        result = store.load(fingerprint, ABCDConfig())
        if spec.expect_reason is None:
            # disk-stray-tmp: the entry itself still serves.
            assert result.hit
        else:
            assert not result.hit
            assert result.reason.startswith(spec.expect_reason)
            # The bad bytes are quarantined, never retried.
            assert not store.entry_path(fingerprint).exists()
            assert store.counters.get("store.quarantined") == 1
        assert store.invariant_violations() == 0

    def test_forged_certificate_survives_envelope_but_not_replay(self, tmp_path):
        # The adversarial case the checksum cannot catch: a perfectly
        # valid envelope whose certificate proves the wrong thing.
        store = store_at(tmp_path)
        _, fingerprint = populate(store)
        DISK_FAULTS["disk-forged-certificate"].corrupt(
            store.entry_path(fingerprint)
        )
        raw = store.entry_path(fingerprint).read_bytes()
        decode_entry(raw)  # the envelope itself is intact
        result = store.load(fingerprint, ABCDConfig())
        assert not result.hit
        assert result.reason.startswith("certificate")

    @pytest.mark.parametrize(
        "name",
        [n for n, s in sorted(DISK_FAULTS.items()) if s.mode == "write"],
    )
    def test_write_fault_contained(self, tmp_path, name):
        spec = DISK_FAULTS[name]
        store = store_at(tmp_path)
        with spec.inject():
            outcome = cached_optimize_source(store, SUM_SOURCE)
        if spec.expect_write == "uncached":
            assert outcome.status == "miss-unstored"
            assert store.counters.get("store.put_errors") == 1
        else:  # benign (concurrent writer): last write wins wholesale
            assert outcome.status == "miss-stored"
            assert store.load(outcome.fingerprint, ABCDConfig()).hit

    def test_corruption_then_recompile_repopulates(self, tmp_path):
        store = store_at(tmp_path)
        _, fingerprint = populate(store)
        DISK_FAULTS["disk-torn-write"].corrupt(store.entry_path(fingerprint))
        outcome = cached_optimize_source(store, SUM_SOURCE)
        assert outcome.status == "miss-stored"  # quarantined, then re-stored
        assert cached_optimize_source(store, SUM_SOURCE).hit


# ----------------------------------------------------------------------
# Maintenance verbs.
# ----------------------------------------------------------------------


class TestMaintenance:
    def test_verify_all_passes_clean_and_quarantines_corrupt(self, tmp_path):
        store = store_at(tmp_path)
        _, fp_one = populate(store)
        _, fp_two = populate(store, SUM_SOURCE_EDITED)
        DISK_FAULTS["disk-flip-payload-byte"].corrupt(store.entry_path(fp_two))
        results = store.verify_all(ABCDConfig())
        verdicts = {r.fingerprint: r for r in results}
        assert verdicts[fp_one].ok and verdicts[fp_one].eliminations > 0
        assert not verdicts[fp_two].ok
        # Second pass: the store healed itself by quarantining.
        assert all(r.ok for r in store.verify_all(ABCDConfig()))

    def test_evict_and_gc(self, tmp_path):
        store = store_at(tmp_path)
        _, fp_one = populate(store)
        _, fp_two = populate(store, SUM_SOURCE_EDITED)
        assert store.evict(fp_one)
        assert not store.evict(fp_one)
        assert store.gc(max_entries=0) == 1
        assert list(store.iter_fingerprints()) == []

    def test_stats_payload_shape(self, tmp_path):
        store = store_at(tmp_path)
        populate(store)
        payload = store.stats_payload()
        assert payload["entries"] == 1
        assert payload["bytes"] > 0
        assert payload["quarantine_files"] == 0


# ----------------------------------------------------------------------
# Property sweep: fuzz-generated programs round-trip through the store.
# ----------------------------------------------------------------------


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", range(6))
    def test_hit_means_byte_identical(self, tmp_path, seed):
        from repro.fuzz.generator import generate_source

        source = generate_source(seed)
        store = store_at(tmp_path)
        cold = cached_optimize_source(store, source)
        warm = cached_optimize_source(store, source)
        if cold.status == "miss-stored":
            assert warm.hit, warm.unstored_reason
            assert format_program(warm.program) == format_program(cold.program)
        else:
            # Uncacheable programs must stay uncacheable, never wrong.
            assert not warm.hit
        assert store.invariant_violations() == 0
