"""Differential-fuzzing subsystem tests.

Covers the four fuzz components plus the miscompile the fuzzer found
while this subsystem was being built:

* generator — per-seed determinism, cross-seed diversity, well-typedness;
* oracle — check-id-insensitive equivalence, fuel-race tolerance;
* campaign — byte-identical JSON for equal ``--seed-base`` (the
  acceptance determinism property, at unit scale);
* shrinker — quality bound under an injected solver fault: the minimized
  program must stay on the same triage signature and get much smaller;
* the DCE purity fix — unused ``div``/``mod`` with a possibly-zero
  divisor must not be deleted (trap erasure found by the fuzzer).
"""

import json

import pytest

from repro.errors import ReproError
from repro.frontend.parser import parse_source
from repro.fuzz.campaign import format_summary, run_campaign
from repro.fuzz.generator import GeneratorConfig, generate_source
from repro.fuzz.oracle import OracleConfig, check_source, outcomes_equivalent
from repro.fuzz.render import render_program
from repro.fuzz.shrink import shrink_source
from repro.fuzz.triage import (
    Signature,
    TriageEntry,
    read_reproducer,
    write_reproducer,
)
from repro.ir.instructions import BinOp, Const, Var
from repro.opt.dce import is_removable
from repro.pipeline import compile_source
from repro.robustness.differential import ExecutionOutcome
from repro.robustness.faults import FAULTS

# Deadlines use SIGALRM; keep unit tests signal-free.
FAST = OracleConfig(deadline=None)


class TestGenerator:
    def test_deterministic_per_seed(self):
        for seed in range(10):
            assert generate_source(seed) == generate_source(seed)

    def test_distinct_across_seeds(self):
        sources = {generate_source(seed) for seed in range(20)}
        assert len(sources) == 20

    def test_generated_programs_are_well_typed(self):
        for seed in range(30):
            source = generate_source(seed)
            try:
                compile_source(source)
            except ReproError as exc:  # pragma: no cover - failure path
                pytest.fail(f"seed {seed} generated a rejected program: {exc}")

    def test_config_bounds_respected(self):
        tiny = GeneratorConfig(max_helpers=0, max_statements=2)
        source = generate_source(7, tiny)
        assert "fn helper" not in source
        assert "fn main" in source

    def test_render_round_trip_is_fixpoint(self):
        for seed in range(10):
            source = generate_source(seed)
            rendered = render_program(parse_source(source))
            assert render_program(parse_source(rendered)) == rendered


class TestOracleEquivalence:
    def test_matching_program(self):
        verdict = check_source(generate_source(0), FAST)
        assert verdict.classification == "match"
        assert verdict.signature is None

    def test_trap_equality_ignores_check_id_and_message(self):
        base = ExecutionOutcome(
            trap="BoundsCheckError", trap_message="check #3 failed",
            check_id=3, index=5, length=4, kind="upper",
        )
        optimized = ExecutionOutcome(
            trap="BoundsCheckError", trap_message="check #9 failed",
            check_id=9, index=5, length=4, kind="upper",
        )
        assert outcomes_equivalent(base, optimized)

    def test_different_failing_index_diverges(self):
        base = ExecutionOutcome(
            trap="BoundsCheckError", check_id=1, index=5, length=4, kind="upper"
        )
        optimized = ExecutionOutcome(
            trap="BoundsCheckError", check_id=1, index=6, length=4, kind="upper"
        )
        assert not outcomes_equivalent(base, optimized)

    def test_trap_vs_return_diverges(self):
        trapped = ExecutionOutcome(trap="DivisionByZeroError")
        returned = ExecutionOutcome(value=1)
        assert not outcomes_equivalent(trapped, returned)
        assert not outcomes_equivalent(returned, trapped)

    def test_fuel_race_is_benign(self):
        source = """
        fn main(): int {
          let n: int = 0;
          while (n < 1000000) { n = n + 1; }
          return n;
        }
        """
        verdict = check_source(source, OracleConfig(fuel=500, deadline=None))
        assert verdict.classification == "fuel-limit"
        assert verdict.signature is None


class TestCampaignDeterminism:
    def test_equal_seed_base_gives_byte_identical_json(self):
        first = run_campaign(12, seed_base=0, oracle_config=FAST)
        second = run_campaign(12, seed_base=0, oracle_config=FAST)
        assert first.verdicts == second.verdicts
        assert json.dumps(first.to_json(), sort_keys=True) == json.dumps(
            second.to_json(), sort_keys=True
        )
        assert format_summary(first) == format_summary(second)

    def test_different_seed_base_differs(self):
        first = run_campaign(6, seed_base=0, oracle_config=FAST)
        second = run_campaign(6, seed_base=100, oracle_config=FAST)
        assert first.verdicts != second.verdicts

    def test_triage_report_bytes_identical_under_fault(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            # Seed 10's program is small, keeping the double shrink cheap.
            with FAULTS["solver-always-true"].inject():
                run_campaign(
                    1,
                    seed_base=10,
                    shrink=True,
                    oracle_config=FAST,
                    report_path=str(path),
                    max_shrink_iterations=50,
                )
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]

    def test_counters_cover_every_program(self):
        result = run_campaign(8, seed_base=0, oracle_config=FAST)
        counters = result.counters
        assert counters["programs"] == 8
        classified = sum(
            count
            for name, count in counters.items()
            if name
            in (
                "match",
                "fuel-limit",
                "value-divergence",
                "trap-divergence",
                "codegen-divergence",
                "crash",
                "rejected",
                "timeout",
            )
        )
        assert classified == 8
        # Campaign counters are folded into SessionStats for --json parity.
        assert result.stats.counters["fuzz.programs"] == 8


class TestShrinkerQuality:
    def test_minimized_program_keeps_signature_and_shrinks(self):
        source = generate_source(10)
        with FAULTS["solver-always-true"].inject():
            verdict = check_source(source, FAST)
            assert verdict.classification == "trap-divergence"
            result = shrink_source(source, verdict.signature, FAST)
            # The minimizer must stay on the same bucket...
            final = check_source(result.source, FAST)
        assert result.reproduced
        assert final.signature == verdict.signature
        # ...and actually minimize: the injected-fault repro needs only an
        # allocation and one out-of-bounds access, a few lines at most.
        assert len(result.source) <= len(source) // 4
        assert len(result.source.splitlines()) <= 10
        assert result.accepted > 0

    def test_non_reproducing_input_reports_failure(self):
        source = generate_source(0)  # matches: nothing to reproduce
        result = shrink_source(
            source, Signature(kind="crash", error="ValueError"), FAST
        )
        assert not result.reproduced
        assert result.source == source

    def test_structural_clone_matches_deepcopy_candidates(self):
        # The shrinker's candidate generation switched from
        # ``copy.deepcopy`` to the structural ``ProgramAST.clone()``;
        # every enumerated mutation must render the same candidate
        # source either way, and cloning must never leak a mutation
        # back into the shared original.  (The mutation-by-mutation
        # deepcopy reference runs on generated programs — the corpus
        # files get the cheaper whole-program comparison below, since
        # the deep-chain reproducer is ~27k lines.)
        import copy
        import itertools

        from repro.frontend.parser import parse_source
        from repro.fuzz.render import render_program
        from repro.fuzz.shrink import _apply_mutation, _enumerate_mutations

        for seed in (3, 10, 17):
            original = parse_source(generate_source(seed))
            baseline = render_program(original)
            mutations = itertools.islice(_enumerate_mutations(original), 80)
            for mutation in mutations:
                via_clone = original.clone()
                via_deepcopy = copy.deepcopy(original)
                applied_clone = _apply_mutation(via_clone, mutation)
                applied_deepcopy = _apply_mutation(via_deepcopy, mutation)
                assert applied_clone == applied_deepcopy
                if applied_clone:
                    assert render_program(via_clone) == render_program(
                        via_deepcopy
                    )
                # The shared original must be untouched either way.
                assert render_program(original) == baseline

    def test_clone_round_trips_the_fuzz_corpus(self):
        # Over the committed reproducers (including the 27k-line
        # deep-chain one) the structural clone must render byte-identical
        # source, and mutating the clone must leave the original intact.
        import itertools
        import pathlib

        from repro.frontend.parser import parse_source
        from repro.fuzz.render import render_program
        from repro.fuzz.shrink import _apply_mutation, _enumerate_mutations
        from repro.fuzz.triage import read_reproducer

        corpus = sorted(
            (pathlib.Path(__file__).parent / "fuzz_corpus").glob("*.mj")
        )
        assert corpus
        for path in corpus:
            _, source = read_reproducer(path)
            original = parse_source(source)
            baseline = render_program(original)
            clone = original.clone()
            assert render_program(clone) == baseline
            for mutation in itertools.islice(
                _enumerate_mutations(original), 5
            ):
                _apply_mutation(clone, mutation)
            assert render_program(original) == baseline

    def test_clone_preserves_interned_types(self):
        # ``Type`` instances are interned singletons compared by ``is``;
        # deepcopy silently broke that on its copies, clone must not.
        from repro.frontend import ast
        from repro.frontend.parser import parse_source
        from repro.frontend.types import NAMED_TYPES

        program = parse_source(generate_source(3)).clone()

        def walk(stmts):
            for stmt in stmts:
                if isinstance(stmt, ast.LetStmt):
                    assert stmt.declared_type in NAMED_TYPES.values()
                for attr in ("then_body", "else_body", "body"):
                    walk(getattr(stmt, attr, []))

        for fn in program.functions:
            assert fn.return_type in NAMED_TYPES.values()
            for param in fn.params:
                assert param.type in NAMED_TYPES.values()
            walk(fn.body)


class TestTriagePersistence:
    def test_reproducer_round_trip(self, tmp_path):
        signature = Signature(kind="crash", error="ValueError", frame="repro.x:f")
        entry = TriageEntry(signature)
        entry.record(41, "fn main(): int { return 3; }\n", "boom")
        path = write_reproducer(str(tmp_path), entry)
        parsed_signature, source = read_reproducer(path)
        assert parsed_signature == signature
        assert source == "fn main(): int { return 3; }\n"

    def test_signature_key_round_trip(self):
        signature = Signature(
            kind="trap-divergence", error="BoundsCheckError[upper]->return"
        )
        assert Signature.parse(signature.key()) == signature


class TestDcePurityFix:
    """The miscompile this fuzzer found: both DCE passes deleted unused
    ``div``/``mod`` instructions whose divisor could be zero, erasing the
    mandatory trap (committed as a corpus reproducer)."""

    def test_div_by_possibly_zero_not_removable(self):
        assert not is_removable(BinOp("t", "div", Var("x"), Var("y")))
        assert not is_removable(BinOp("t", "mod", Var("x"), Const(0)))

    def test_div_by_nonzero_const_removable(self):
        assert is_removable(BinOp("t", "div", Var("x"), Const(2)))
        assert is_removable(BinOp("t", "mod", Var("x"), Const(-3)))

    def test_other_binops_still_removable(self):
        assert is_removable(BinOp("t", "add", Var("x"), Var("y")))

    def test_unused_division_trap_preserved_end_to_end(self):
        source = """
        fn main(): int {
          let z: int = 0;
          let dead: int = 17 % z;
          return 66;
        }
        """
        verdict = check_source(source, FAST)
        assert verdict.classification == "match"
        assert verdict.base.trap == "DivisionByZeroError"
        assert verdict.optimized.trap == "DivisionByZeroError"


class TestCliFuzz:
    def test_json_campaign_exits_zero(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--seeds", "3", "--json", "--quiet"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["programs"] == 3
        assert payload["unexplained"] == 0
