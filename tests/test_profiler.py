"""Profiler and hot-check selection tests."""

from repro.pipeline import compile_source
from repro.runtime.profiler import collect_profile, find_check, static_check_table

SRC = """
fn main(): int {
  let a: int[] = new int[8];
  let b: int[] = new int[8];
  let s: int = 0;
  for (let outer: int = 0; outer < 10; outer = outer + 1) {
    for (let i: int = 0; i < len(a); i = i + 1) {
      s = s + a[i];
    }
  }
  s = s + b[0];
  return s;
}
"""


def profiled():
    program = compile_source(SRC)
    return program, collect_profile(program, "main")


class TestProfile:
    def test_check_counts_reflect_execution(self):
        _, profile = profiled()
        counts = sorted(profile.check_counts.values(), reverse=True)
        assert counts[0] == 80  # inner loop body: 10 x 8
        assert 1 in counts  # the single b[0] access

    def test_hot_checks_ordering(self):
        _, profile = profiled()
        hot = profile.hot_checks()
        freqs = [profile.check_frequency(c) for c in hot]
        assert freqs == sorted(freqs, reverse=True)

    def test_hot_checks_threshold(self):
        _, profile = profiled()
        hot = profile.hot_checks(threshold=10)
        assert all(profile.check_frequency(c) >= 10 for c in hot)

    def test_hottest_fraction_covers(self):
        _, profile = profiled()
        selected = profile.hottest_fraction(0.9)
        covered = sum(profile.check_frequency(c) for c in selected)
        total = sum(profile.check_counts.values())
        assert covered >= 0.9 * total
        # The hot set should exclude the cold b[0] checks.
        assert len(selected) < len(profile.check_counts)

    def test_hottest_fraction_empty_profile(self):
        program = compile_source("fn main(): int { return 0; }")
        profile = collect_profile(program, "main")
        assert profile.hottest_fraction(0.9) == []

    def test_edge_frequencies(self):
        _, profile = profiled()
        loop_edges = [
            count for key, count in profile.edge_counts.items() if count >= 80
        ]
        assert loop_edges

    def test_block_frequency_accessor(self):
        program, profile = profiled()
        fn = program.function("main")
        assert profile.block_frequency("main", fn.entry) == 1


class TestCheckTable:
    def test_static_table_covers_all_checks(self):
        program, _ = profiled()
        table = static_check_table(program)
        ids = {c.check_id for c in program.all_checks()}
        assert set(table) == ids

    def test_find_check(self):
        program, _ = profiled()
        some_id = next(iter({c.check_id for c in program.all_checks()}))
        location = find_check(program, some_id)
        assert location is not None
        assert location[0] == "main"

    def test_find_missing_check(self):
        program, _ = profiled()
        assert find_check(program, 10_000) is None
