"""Partial-redundancy elimination (Section 6) tests."""

import pytest

from repro.core.abcd import ABCDConfig, optimize_program
from repro.ir.instructions import CheckUpper, SpeculativeCheck
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.profiler import collect_profile
from tests.conftest import optimize_and_compare

#: A loop-invariant upper check: `probe` is a parameter, so full-redundancy
#: analysis fails, but one hoisted check per loop entry suffices.
LOOP_INVARIANT_SRC = """
fn kernel(data: int[], probe: int, iters: int): int {
  let acc: int = 0;
  let iter: int = 0;
  while (iter < iters) {
    acc = acc + data[probe];
    iter = iter + 1;
  }
  return acc;
}
fn main(): int {
  let data: int[] = new int[64];
  for (let i: int = 0; i < len(data); i = i + 1) {
    data[i] = i * 3;
  }
  return kernel(data, 17, 50);
}
"""


def speculative_checks(program):
    return [
        instr
        for fn in program.functions.values()
        for instr in fn.all_instructions()
        if isinstance(instr, SpeculativeCheck)
    ]


def guarded_checks(program):
    return [
        instr
        for fn in program.functions.values()
        for instr in fn.all_instructions()
        if isinstance(instr, CheckUpper) and instr.guard_group is not None
    ]


class TestLoopInvariantHoisting:
    def test_pre_transforms_the_check(self):
        base, opt, report, program = optimize_and_compare(
            LOOP_INVARIANT_SRC, pre=True
        )
        assert report.pre_transformed >= 1
        assert speculative_checks(program)
        assert guarded_checks(program)

    def test_dynamic_checks_drop(self):
        base, opt, _, _ = optimize_and_compare(LOOP_INVARIANT_SRC, pre=True)
        survived = opt.stats.total_checks + opt.stats.speculative_checks
        assert survived < base.stats.total_checks / 3

    def test_without_pre_check_survives(self):
        base, opt, report, _ = optimize_and_compare(LOOP_INVARIANT_SRC, pre=False)
        # The invariant check executes every iteration without PRE.
        assert opt.stats.upper_checks >= 50

    def test_guarded_check_dormant_when_speculation_succeeds(self):
        _, opt, _, _ = optimize_and_compare(LOOP_INVARIANT_SRC, pre=True)
        assert opt.stats.speculation_failures == 0


class TestSpeculationFailureRecovery:
    """A speculative check may fail spuriously; the guarded original must
    then take over and raise at the *original* program point."""

    SRC = """
fn kernel(data: int[], probe: int, iters: int): int {
  let acc: int = 0;
  let iter: int = 0;
  while (iter < iters) {
    if (probe < len(data)) {
      acc = acc + data[probe];
    }
    iter = iter + 1;
  }
  return acc;
}
fn main(): int {
  let data: int[] = new int[8];
  return kernel(data, 3, 10);
}
"""

    def test_out_of_range_probe_still_safe(self):
        # Compile once, optimize with a profile from an in-range run, then
        # call the kernel with an out-of-range probe: the speculative check
        # fails, the guard flag raises, and the guarded check (never
        # reached: the `if` protects the access) keeps semantics intact.
        program = compile_source(self.SRC)
        base = clone_program(program)
        profile = collect_profile(program, "main")
        config = ABCDConfig(pre=True)
        optimize_program(program, config, profile)

        base_value = run(base, "kernel", [make_array(8), 99, 5]).value
        opt_result = run(program, "kernel", [make_array(8), 99, 5])
        assert opt_result.value == base_value

    def test_failing_access_raises_at_original_point(self):
        from repro.errors import BoundsCheckError

        src = LOOP_INVARIANT_SRC
        program = compile_source(src)
        base = clone_program(program)
        profile = collect_profile(program, "main")
        optimize_program(program, ABCDConfig(pre=True), profile)

        args = [make_array(8), 100, 5]
        with pytest.raises(BoundsCheckError) as base_exc:
            run(base, "kernel", args)
        with pytest.raises(BoundsCheckError) as opt_exc:
            run(program, "kernel", args)
        # Same original check id raises in both versions.
        assert opt_exc.value.check_id == base_exc.value.check_id


def make_array(n):
    from repro.runtime.values import ArrayValue

    return ArrayValue(n)


class TestProfitability:
    def test_unprofitable_insertion_rejected(self):
        # The "loop" runs zero iterations in the profile: hoisting would
        # add work, so PRE must not fire.
        src = """
fn kernel(data: int[], probe: int, iters: int): int {
  let acc: int = 0;
  let iter: int = 0;
  while (iter < iters) {
    acc = acc + data[probe];
    iter = iter + 1;
  }
  return acc;
}
fn main(): int {
  let data: int[] = new int[8];
  return kernel(data, 2, 0);
}
"""
        _, _, report, program = optimize_and_compare(src, pre=True)
        assert report.pre_transformed == 0
        assert not speculative_checks(program)

    def test_gain_ratio_zero_disables_pre(self):
        config = ABCDConfig(pre_gain_ratio=0.0)
        _, _, report, program = optimize_and_compare(
            LOOP_INVARIANT_SRC, config=config, pre=True
        )
        assert report.pre_transformed == 0


class TestCompensatingCheckShape:
    def test_insertion_outside_the_loop(self):
        _, _, _, program = optimize_and_compare(LOOP_INVARIANT_SRC, pre=True)
        fn = program.function("kernel")
        # The speculative check must live in a block that executes once
        # per call, i.e. not inside the while body (which contains the
        # guarded original check).
        spec_blocks = {
            label
            for label in fn.reachable_blocks()
            for instr in fn.blocks[label].body
            if isinstance(instr, SpeculativeCheck)
        }
        guard_blocks = {
            label
            for label in fn.reachable_blocks()
            for instr in fn.blocks[label].body
            if isinstance(instr, CheckUpper) and instr.guard_group is not None
        }
        assert spec_blocks and guard_blocks
        assert spec_blocks.isdisjoint(guard_blocks)

    def test_guard_groups_link_spec_to_original(self):
        _, _, _, program = optimize_and_compare(LOOP_INVARIANT_SRC, pre=True)
        spec_groups = {s.guard_group for s in speculative_checks(program)}
        guarded_groups = {g.guard_group for g in guarded_checks(program)}
        assert guarded_groups <= spec_groups
