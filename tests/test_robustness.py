"""Fail-safe layer tests: pass guards, solver budgets, the differential
soundness gate, and the shared recursion-headroom helper."""

import sys

import pytest

import repro.core.solver as solver_module
from repro.core.abcd import ABCDConfig, PassFailure
from repro.core.graph import InequalityGraph, len_node, var_node
from repro.core.lattice import ProofResult
from repro.core.solver import DemandProver
from repro.errors import (
    BoundsCheckError,
    IRVerificationError,
    PassGuardError,
    SoundnessGateError,
)
from repro.limits import recursion_headroom
from repro.pipeline import abcd, clone_program, compile_source, run
from repro.robustness.differential import (
    assert_equivalent,
    compare_programs,
    execute_outcome,
    gated_optimize,
)
from repro.robustness.guard import (
    PassGuard,
    guarded_optimize_program,
    guarded_standard_pipeline,
)

LOOP_SRC = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""

TRAP_SRC = """
fn main(): int {
  let a: int[] = new int[4];
  let i: int = 0;
  let s: int = 0;
  while (i <= len(a)) {
    a[i] = i;
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
"""


def _chain_graph(length):
    """A -> x0 -> x1 -> ... each step weight 0, so the full chain is
    provable at budget 0 but needs one recursion level per link."""
    graph = InequalityGraph()
    nodes = [var_node(f"x{i}") for i in range(length)]
    graph.add_edge(len_node("A"), nodes[0], 0)
    for left, right in zip(nodes, nodes[1:]):
        graph.add_edge(left, right, 0)
    return graph, nodes[-1]


class TestSolverBudgets:
    def test_unbudgeted_chain_proves(self):
        graph, target = _chain_graph(10)
        prover = DemandProver(graph)
        outcome = prover.demand_prove(len_node("A"), target, 0)
        assert outcome.result.proven
        assert not outcome.budget_exhausted

    def test_step_budget_exhaustion_is_conservative_false(self):
        graph, target = _chain_graph(10)
        prover = DemandProver(graph, max_steps=3)
        outcome = prover.demand_prove(len_node("A"), target, 0)
        assert outcome.result is ProofResult.FALSE
        assert outcome.budget_exhausted
        assert prover.exhausted_budget == "steps"

    def test_depth_budget_exhaustion(self):
        graph, target = _chain_graph(10)
        prover = DemandProver(graph, max_depth=2)
        outcome = prover.demand_prove(len_node("A"), target, 0)
        assert outcome.result is ProofResult.FALSE
        assert prover.exhausted_budget == "depth"

    def test_generous_depth_budget_still_proves(self):
        graph, target = _chain_graph(10)
        prover = DemandProver(graph, max_depth=50)
        assert prover.demand_prove(len_node("A"), target, 0).result.proven

    def test_deadline_exhaustion(self, monkeypatch):
        monkeypatch.setattr(solver_module, "_DEADLINE_STRIDE", 1)
        graph, target = _chain_graph(10)
        prover = DemandProver(graph, deadline=1e-9)
        outcome = prover.demand_prove(len_node("A"), target, 0)
        assert outcome.result is ProofResult.FALSE
        assert prover.exhausted_budget == "deadline"

    def test_abcd_with_tiny_budget_terminates_and_keeps_checks(self):
        # The acceptance criterion: with an artificially low budget ABCD
        # still terminates, keeps every unproven check, reports the
        # exhaustion, and the program behaves identically.
        program = compile_source(LOOP_SRC)
        baseline = clone_program(program)
        report = abcd(program, ABCDConfig(max_steps=1))
        assert report.eliminated_count() == 0
        assert report.budget_exhausted_count == report.analyzed > 0
        assert all(a.budget_exhausted for a in report.analyses)
        result = compare_programs(baseline, program)
        assert result.matched, result.explain()
        assert run(program, "main").stats.total_checks == 32

    def test_default_budget_does_not_change_results(self):
        program = compile_source(LOOP_SRC)
        report = abcd(program)
        assert report.eliminated_count() == report.analyzed == 4
        assert report.budget_exhausted_count == 0

    def test_budget_threading_from_config(self):
        program = compile_source(LOOP_SRC)
        report = abcd(program, ABCDConfig(max_depth=0))
        assert report.budget_exhausted_count > 0


class TestPassGuard:
    def test_successful_pass_keeps_result(self):
        fn = compile_source(LOOP_SRC).function("main")
        guard = PassGuard()
        result = guard.run_function_pass("noop", fn, lambda: 42)
        assert result == 42
        assert guard.rollback_count == 0

    def test_raising_pass_rolls_back(self):
        fn = compile_source(LOOP_SRC).function("main")
        before = len(fn.blocks[fn.entry].body)

        def bad_pass():
            fn.blocks[fn.entry].body.clear()
            raise RuntimeError("pass exploded")

        guard = PassGuard()
        assert guard.run_function_pass("bad", fn, bad_pass) is None
        assert len(fn.blocks[fn.entry].body) == before
        (failure,) = guard.failures
        assert failure.pass_name == "bad"
        assert failure.stage == "exception"
        assert failure.error_type == "RuntimeError"

    def test_malformed_ir_rolls_back(self):
        fn = compile_source(LOOP_SRC).function("main")

        def corrupting_pass():
            fn.blocks[fn.entry].terminator = None  # verifier must catch

        guard = PassGuard()
        assert guard.run_function_pass("corrupt", fn, corrupting_pass) is None
        assert fn.blocks[fn.entry].terminator is not None
        (failure,) = guard.failures
        assert failure.stage == "verify"

    def test_rollback_preserves_identity(self):
        # Rollback must restore in place: outstanding references (the
        # program's function table) keep seeing the same object.
        program = compile_source(LOOP_SRC)
        fn = program.function("main")

        def bad_pass():
            raise ValueError("no")

        PassGuard().run_function_pass("bad", fn, bad_pass)
        assert program.function("main") is fn

    def test_strict_mode_escalates(self):
        fn = compile_source(LOOP_SRC).function("main")
        guard = PassGuard(strict=True)
        with pytest.raises(PassGuardError, match="boom"):
            guard.run_function_pass(
                "bad", fn, lambda: (_ for _ in ()).throw(RuntimeError("boom"))
            )
        # Even on escalation the function was restored first.
        from repro.ir.verifier import verify_function

        verify_function(fn)

    def test_program_pass_rollback(self):
        program = compile_source(LOOP_SRC)

        def nuke():
            program.functions.clear()
            raise RuntimeError("gone")

        guard = PassGuard()
        assert guard.run_program_pass("nuke", program, nuke) is None
        assert "main" in program.functions
        assert guard.failures[0].function == "<program>"

    def test_guarded_standard_pipeline_contains_failures(self, monkeypatch):
        import repro.opt as opt

        def bad_fold(fn):
            raise RuntimeError("folding bug")

        monkeypatch.setattr(opt, "fold_constants", bad_fold)
        fn = compile_source(LOOP_SRC, standard_opts=False).function("main")
        guard = PassGuard()
        guarded_standard_pipeline(fn, guard)
        assert guard.rollback_count == 1
        assert guard.failures[0].pass_name == "constant-folding"
        from repro.ir.verifier import verify_function

        verify_function(fn)

    def test_guarded_optimize_program_survives_abcd_crash(self, monkeypatch):
        import repro.core.abcd as abcd_module

        def exploding(fn):
            raise RuntimeError("graph bug")

        monkeypatch.setattr(abcd_module, "build_graphs", exploding)
        program = compile_source(LOOP_SRC)
        report = guarded_optimize_program(program, ABCDConfig())
        assert report.rollback_count == 1
        assert report.rollbacks_by_pass() == {"abcd": 1}
        assert run(program, "main").value == 28

    def test_report_merge_carries_failures(self):
        from repro.core.abcd import ABCDReport

        first = ABCDReport()
        first.pass_failures.append(
            PassFailure("abcd", "f", "exception", "RuntimeError", "x")
        )
        second = ABCDReport()
        second.merge(first)
        assert second.rollback_count == 1


class TestDifferentialGate:
    def test_execute_outcome_captures_trap(self):
        program = compile_source(TRAP_SRC)
        outcome = execute_outcome(program)
        assert outcome.trap == "BoundsCheckError"
        assert outcome.index == 4 and outcome.length == 4

    def test_equivalent_programs_match(self):
        program = compile_source(LOOP_SRC)
        optimized = clone_program(program)
        abcd(optimized)
        result = compare_programs(program, optimized)
        assert result.matched
        assert_equivalent(program, optimized)

    def test_divergence_detected_and_explained(self):
        program = compile_source(LOOP_SRC)
        # Sabotage a clone: change the returned constant.
        from repro.ir.instructions import Const, Return

        broken = clone_program(program)
        for block in broken.function("main").blocks.values():
            if isinstance(block.terminator, Return):
                block.terminator.value = Const(999)
        result = compare_programs(program, broken)
        assert not result.matched
        assert "DIVERGED" in result.explain()
        assert "999" in result.explain()

    def test_gated_optimize_commits_sound_result(self):
        program = compile_source(LOOP_SRC)
        gated = gated_optimize(program)
        assert gated.sound and not gated.reverted
        assert run(program, "main").stats.total_checks == 0

    def test_gated_optimize_reverts_unsound_result(self, monkeypatch):
        # An optimizer that deletes every check produces well-formed but
        # unsound IR; the gate must refuse to commit it.
        import repro.core.abcd as abcd_module
        from repro.core.lattice import ProofResult
        from repro.core.solver import ProveOutcome

        class AlwaysTrue:
            def __init__(self, graph, edge_filter=None, **kwargs):
                self.steps = 1
                self.budget_exhausted = False

            def demand_prove(self, source, target, budget, direction=None):
                return ProveOutcome(ProofResult.TRUE, self.steps)

        monkeypatch.setattr(abcd_module, "DemandProver", AlwaysTrue)
        program = compile_source(TRAP_SRC)
        gated = gated_optimize(program)
        assert gated.reverted
        assert any(
            f.pass_name == "differential-gate" for f in gated.report.pass_failures
        )
        # The published program still traps exactly like the original.
        with pytest.raises(BoundsCheckError):
            run(program, "main")

    def test_gated_optimize_strict_raises(self, monkeypatch):
        import repro.core.abcd as abcd_module
        from repro.core.lattice import ProofResult
        from repro.core.solver import ProveOutcome

        class AlwaysTrue:
            def __init__(self, graph, edge_filter=None, **kwargs):
                self.steps = 1
                self.budget_exhausted = False

            def demand_prove(self, source, target, budget, direction=None):
                return ProveOutcome(ProofResult.TRUE, self.steps)

        monkeypatch.setattr(abcd_module, "DemandProver", AlwaysTrue)
        program = compile_source(TRAP_SRC)
        with pytest.raises(SoundnessGateError):
            gated_optimize(program, strict=True)


class TestRecursionHeadroom:
    def test_restores_limit(self):
        before = sys.getrecursionlimit()
        with recursion_headroom(before + 5000):
            assert sys.getrecursionlimit() == before + 5000
        assert sys.getrecursionlimit() == before

    def test_never_lowers_limit(self):
        before = sys.getrecursionlimit()
        with recursion_headroom(10):
            assert sys.getrecursionlimit() == before
        assert sys.getrecursionlimit() == before

    def test_restores_on_exception(self):
        before = sys.getrecursionlimit()
        with pytest.raises(RuntimeError):
            with recursion_headroom(before + 1000):
                raise RuntimeError("boom")
        assert sys.getrecursionlimit() == before

    def test_ssa_construction_does_not_leak_limit(self):
        before = sys.getrecursionlimit()
        compile_source(LOOP_SRC)
        assert sys.getrecursionlimit() == before
