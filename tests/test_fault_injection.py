"""Fault-injection suite: deliberately break one optimizer layer at a time
and assert the fail-safe net (pass guards + differential soundness gate)
contains every fault.

Containment contract, per fault's declared expectation:

* ``rollback`` — the pass guard detects the fault (exception or verifier
  failure) and rolls the function back; at least one rollback recorded.
* ``gate`` — the fault yields well-formed but unsound IR that only the
  differential gate can catch: the gate must revert the optimization.
* ``harmless`` — the fault is conservative (can only lose eliminations),
  so neither layer intervenes and behavior is untouched.
* ``revoke`` — the fault corrupts emitted proof witnesses; the
  independent certificate checker rejects them and the revocation ladder
  keeps the affected checks in place (no crash, no gate revert needed).

In every case the pipeline must not crash and the final program must
behave identically to a clean (fault-free) compile of the same source.
"""

import pytest

from repro.robustness import faults
from repro.robustness.faults import FAULTS, SCENARIOS, run_all_trials, run_trial

ALL_FAULT_NAMES = sorted(FAULTS)


def test_fault_registry_covers_required_layers():
    categories = {spec.category for spec in FAULTS.values()}
    assert {"graph", "solver", "pre", "pass", "certificate"} <= categories
    assert len(FAULTS) >= 8


def test_every_fault_names_a_known_scenario():
    for spec in FAULTS.values():
        assert spec.scenario in SCENARIOS
        assert spec.expect in ("rollback", "gate", "harmless", "revoke")
        # Only witness corruption needs certify mode.
        assert spec.certify == (spec.expect == "revoke")


@pytest.mark.parametrize("fault_name", ALL_FAULT_NAMES)
def test_fault_is_contained(fault_name):
    trial = run_trial(fault_name)
    assert not trial.crashed, (
        f"{fault_name}: pipeline crashed instead of degrading: "
        f"{trial.crash_message}"
    )
    assert trial.final_matched, (
        f"{fault_name}: optimized program diverged from clean behavior: "
        f"{trial.final_detail}"
    )


@pytest.mark.parametrize("fault_name", ALL_FAULT_NAMES)
def test_fault_lands_in_expected_bucket(fault_name):
    trial = run_trial(fault_name)
    expect = trial.fault.expect
    if expect == "rollback":
        assert trial.rollbacks > 0, f"{fault_name}: expected a pass rollback"
        assert not trial.gate_reverted
    elif expect == "gate":
        assert trial.gate_reverted, (
            f"{fault_name}: unsound IR escaped the differential gate"
        )
    elif expect == "revoke":
        assert trial.report is not None
        assert trial.report.certificates_rejected > 0, (
            f"{fault_name}: the checker believed a corrupted witness"
        )
        assert trial.revocations > 0, (
            f"{fault_name}: rejection did not revoke any elimination"
        )
        assert not trial.gate_reverted, (
            f"{fault_name}: revocation should leave nothing for the gate"
        )
    else:  # harmless
        assert trial.rollbacks == 0, f"{fault_name}: spurious rollback"
        assert not trial.gate_reverted, f"{fault_name}: spurious gate revert"


def test_run_all_trials_summary():
    trials = run_all_trials()
    assert len(trials) == len(FAULTS)
    assert all(t.contained for t in trials)


def test_scenarios_trap_without_faults():
    # The trial scenarios rely on a deterministic bounds trap; make sure a
    # clean compile+optimize keeps that trap observable (otherwise the
    # gate-detection assertions above would be vacuous).
    from repro.pipeline import abcd, compile_source, run
    from repro.errors import BoundsCheckError

    for name in ("off_by_one", "diamond"):
        program = compile_source(SCENARIOS[name].source)
        abcd(program)
        with pytest.raises(BoundsCheckError):
            run(program, "main")


def test_memo_poison_scenario_actually_exercises_the_memo():
    # Guard against the diamond scenario silently regressing into one
    # whose proof never consults the memo (the poison would then test
    # nothing).
    from repro.core.solver import _Memo
    from repro.pipeline import abcd, compile_source

    calls = []
    original = _Memo.lookup

    def counting(self, budget):
        calls.append(budget)
        return original(self, budget)

    _Memo.lookup = counting
    try:
        program = compile_source(SCENARIOS["diamond"].source)
        abcd(program)
    finally:
        _Memo.lookup = original
    assert calls, "diamond scenario no longer reaches a memo lookup"


def test_injection_is_scoped():
    # After a trial the patched modules must be back to their originals —
    # otherwise one test could corrupt every later one.
    import repro.core.abcd as abcd_module
    import repro.core.pre as pre_module
    from repro.core.solver import DemandProver, _Memo

    before = (
        abcd_module.build_graphs,
        abcd_module.DemandProver,
        pre_module._insert_compensating_check,
        _Memo.lookup,
        DemandProver.demand_prove,
    )
    for name in ALL_FAULT_NAMES:
        run_trial(name)
    after = (
        abcd_module.build_graphs,
        abcd_module.DemandProver,
        pre_module._insert_compensating_check,
        _Memo.lookup,
        DemandProver.demand_prove,
    )
    assert before == after
    assert abcd_module.DemandProver is DemandProver
