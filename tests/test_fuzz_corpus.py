"""Replay every committed fuzz reproducer through the differential oracle.

Each file under ``tests/fuzz_corpus/`` is a minimized program that once
exposed a real bug (its header records the historical signature).  The
bugs are fixed, so replaying must produce a *benign* verdict — this suite
is the regression net that keeps them fixed.  An empty or missing corpus
is fine: the parametrization is simply empty.
"""

import pathlib

import pytest

from repro.fuzz.oracle import OracleConfig, check_source
from repro.fuzz.triage import BENIGN_KINDS, FINDING_KINDS, read_reproducer

CORPUS_DIR = pathlib.Path(__file__).parent / "fuzz_corpus"


def corpus_files():
    if not CORPUS_DIR.is_dir():
        return []
    return sorted(CORPUS_DIR.glob("*.mj"))


@pytest.mark.parametrize(
    "path", corpus_files(), ids=lambda p: p.stem if p else "empty"
)
def test_reproducer_stays_fixed(path):
    signature, source = read_reproducer(path)
    # Header sanity: the recorded signature names a real finding class.
    assert signature.kind in FINDING_KINDS, f"{path.name}: bad header kind"
    assert source.strip(), f"{path.name}: empty program body"

    # Replay is a regression net, not a latency gate: the deep-chain
    # reproducer legitimately needs ~15s for its two executions, so give
    # the oracle deadline generous headroom over the interactive default.
    verdict = check_source(source, OracleConfig(deadline=120.0))
    assert verdict.classification in BENIGN_KINDS, (
        f"{path.name}: historical bug {signature.key()!r} resurfaced as "
        f"{verdict.classification}: {verdict.detail}"
    )


def test_corpus_filenames_match_signatures():
    for path in corpus_files():
        signature, _ = read_reproducer(path)
        assert path.stem == signature.slug(), (
            f"{path.name}: filename does not match its signature slug "
            f"{signature.slug()!r}"
        )
