"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import pytest

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.ir.function import Program
from repro.pipeline import abcd, clone_program, compile_source, run
from repro.runtime.interpreter import ExecutionResult
from repro.runtime.profiler import collect_profile


def compile_and_run(source: str, args: Sequence = (), fn: str = "main") -> ExecutionResult:
    """Compile MiniJ source and execute one function."""
    program = compile_source(source)
    return run(program, fn, args)


def optimize_and_compare(
    source: str,
    config: Optional[ABCDConfig] = None,
    pre: bool = False,
    args: Sequence = (),
) -> Tuple[ExecutionResult, ExecutionResult, ABCDReport, Program]:
    """Compile, optimize, and run both versions on the same input.

    Asserts behavioural equivalence and returns
    ``(base_result, opt_result, report, optimized_program)``.
    """
    program = compile_source(source)
    base = clone_program(program)
    profile = None
    if pre:
        profile = collect_profile(program, "main", list(args))
    report = abcd(program, config=config, pre=pre, profile=profile)
    base_result = run(base, "main", args)
    opt_result = run(program, "main", args)
    assert base_result.value == opt_result.value, (
        f"optimization changed behaviour: {base_result.value} != {opt_result.value}"
    )
    return base_result, opt_result, report, program


@pytest.fixture
def bubble_source() -> str:
    """The paper's running example (Figure 1, both inner loops)."""
    return """
fn sort(a: int[]): void {
  let limit: int = len(a);
  let st: int = 0 - 1;
  while (st < limit) {
    st = st + 1;
    limit = limit - 1;
    for (let j: int = st; j < limit; j = j + 1) {
      if (a[j] > a[j + 1]) {
        let t: int = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
}
fn main(): int {
  let a: int[] = new int[16];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = 100 - i * 7;
  }
  sort(a);
  let errors: int = 0;
  for (let i: int = 0; i < len(a) - 1; i = i + 1) {
    if (a[i] > a[i + 1]) {
      errors = errors + 1;
    }
  }
  return errors;
}
"""
