"""IR verifier negative paths: every mutation of well-formed IR below must
be rejected with a message that names the offending instruction or variable.

These invariants are what the pass-guard layer (``repro.robustness.guard``)
relies on to detect a transformation that completed without raising but
left malformed IR behind — so each one needs a test proving the verifier
actually fires.
"""

import pytest

from repro.errors import IRVerificationError
from repro.ir.instructions import Phi, Pi
from repro.ir.verifier import verify_function
from repro.pipeline import compile_source

SRC = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""


@pytest.fixture
def fn():
    function = compile_source(SRC).function("main")
    verify_function(function)  # sanity: well-formed before mutation
    return function


def _find_phi(fn):
    for label in fn.blocks:
        for phi in fn.blocks[label].phis:
            return label, phi
    raise AssertionError("test program has no φ")


def _find_pi(fn):
    for label in fn.blocks:
        for instr in fn.blocks[label].body:
            if isinstance(instr, Pi):
                return label, instr
    raise AssertionError("test program has no π")


class TestPhiInvariants:
    def test_phi_arity_mismatch(self, fn):
        label, phi = _find_phi(fn)
        dropped = next(iter(phi.incomings))
        del phi.incomings[dropped]
        with pytest.raises(IRVerificationError, match=rf"φ {phi.dest}"):
            verify_function(fn)

    def test_phi_outside_block_head(self, fn):
        label, phi = _find_phi(fn)
        block = fn.blocks[label]
        block.phis.remove(phi)
        block.body.append(phi)
        with pytest.raises(IRVerificationError, match="outside the block head"):
            verify_function(fn)

    def test_phi_operand_undefined(self, fn):
        label, phi = _find_phi(fn)
        pred = next(iter(phi.incomings))
        from repro.ir.instructions import Var

        phi.incomings[pred] = Var("ghost0")
        with pytest.raises(IRVerificationError, match=r"'ghost0'.*undefined"):
            verify_function(fn)


class TestSSAInvariants:
    def test_use_of_undefined_variable(self, fn):
        # Retarget some instruction's used variable to a name with no
        # definition anywhere in the function.
        for label in fn.blocks:
            for instr in fn.blocks[label].body:
                if hasattr(instr, "src") and isinstance(instr.src, str):
                    instr.src = "phantom9"
                    with pytest.raises(
                        IRVerificationError,
                        match=r"undefined variable 'phantom9'",
                    ):
                        verify_function(fn)
                    return
        raise AssertionError("no mutable instruction found")

    def test_use_before_definition_in_block(self, fn):
        # Move a defining instruction after a use of it inside one block.
        for label in fn.blocks:
            body = fn.blocks[label].body
            for position, instr in enumerate(body):
                dest = instr.defs()
                if dest is None:
                    continue
                later_users = [
                    (j, other)
                    for j, other in enumerate(body[position + 1 :], position + 1)
                    if dest in other.used_vars()
                ]
                if not later_users:
                    continue
                j, _user = later_users[-1]
                body.insert(j + 1, body.pop(position))
                with pytest.raises(
                    IRVerificationError,
                    match=rf"'{dest}' used before its definition",
                ):
                    verify_function(fn)
                return
        raise AssertionError("no def-use pair within a block")

    def test_duplicate_ssa_definition(self, fn):
        # Re-append an existing defining instruction: two static defs of
        # the same SSA name.
        for label in fn.blocks:
            for instr in fn.blocks[label].body:
                dest = instr.defs()
                if dest is not None:
                    fn.blocks[label].body.append(instr)
                    with pytest.raises(
                        IRVerificationError,
                        match=rf"'{dest}' defined more than once",
                    ):
                        verify_function(fn)
                    return
        raise AssertionError("no defining instruction found")


class TestESSAInvariants:
    def test_dangling_pi_source(self, fn):
        label, pi = _find_pi(fn)
        pi.src = "vanished3"
        with pytest.raises(
            IRVerificationError, match=r"'vanished3'"
        ):
            verify_function(fn)

    def test_duplicate_pi_destination(self, fn):
        label, pi = _find_pi(fn)
        fn.blocks[label].body.append(
            Pi(dest=pi.dest, src=pi.src, predicate=pi.predicate)
        )
        with pytest.raises(
            IRVerificationError,
            match=rf"'{pi.dest}' defined more than once",
        ):
            verify_function(fn)


class TestStructuralInvariants:
    def test_missing_terminator(self, fn):
        label = next(iter(fn.blocks))
        fn.blocks[label].terminator = None
        with pytest.raises(IRVerificationError, match="missing terminator"):
            verify_function(fn)

    def test_jump_to_unknown_block(self, fn):
        for label in fn.blocks:
            block = fn.blocks[label]
            if block.successors():
                block.replace_successor(block.successors()[0], "nowhere")
                with pytest.raises(
                    IRVerificationError, match=r"unknown block 'nowhere'"
                ):
                    verify_function(fn)
                return
        raise AssertionError("no block with successors")
