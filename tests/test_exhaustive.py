"""Exhaustive fixpoint solver tests and agreement with the demand solver."""

import math

from repro.core.exhaustive import compute_distances, exhaustive_prove
from repro.core.graph import InequalityGraph, const_node, len_node, var_node
from repro.core.solver import demand_prove

A = len_node("A")
INF = math.inf


class TestDistances:
    def test_simple_chain(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("n"), 0)
        graph.add_edge(var_node("n"), var_node("i"), -1)
        dist = compute_distances(graph, A)
        assert dist[var_node("n")] == 0
        assert dist[var_node("i")] == -1

    def test_unreachable_is_infinite(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), 0)
        dist = compute_distances(graph, A, extra_nodes=[var_node("y")])
        assert dist[var_node("y")] == INF

    def test_min_node_takes_strongest(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -1)
        graph.add_edge(A, var_node("x"), -3)  # replaced: strongest kept
        graph.add_edge(var_node("other"), var_node("x"), 5)
        dist = compute_distances(graph, A)
        assert dist[var_node("x")] == -3

    def test_phi_takes_weakest(self):
        graph = InequalityGraph()
        phi = var_node("p")
        graph.mark_phi(phi)
        graph.add_edge(var_node("a"), phi, 0)
        graph.add_edge(var_node("b"), phi, 0)
        graph.add_edge(A, var_node("a"), -3)
        graph.add_edge(A, var_node("b"), -1)
        dist = compute_distances(graph, A)
        assert dist[phi] == -1

    def test_phi_with_unreachable_arg_unconstrained(self):
        graph = InequalityGraph()
        phi = var_node("p")
        graph.mark_phi(phi)
        graph.add_edge(var_node("a"), phi, 0)
        graph.add_edge(var_node("b"), phi, 0)
        graph.add_edge(A, var_node("a"), -3)
        dist = compute_distances(graph, A)
        assert dist[phi] == INF

    def test_amplifying_cycle_through_phi(self):
        # φ(entry, φ+1): the increasing back edge cannot lower the φ value
        # below the entry bound.
        graph = InequalityGraph()
        phi = var_node("i1")
        graph.mark_phi(phi)
        graph.add_edge(var_node("i0"), phi, 0)
        graph.add_edge(var_node("i2"), phi, 0)
        graph.add_edge(phi, var_node("i2"), 1)
        graph.add_edge(A, var_node("i0"), -1)
        dist = compute_distances(graph, A)
        assert dist[phi] == INF  # weakest arg i2 keeps growing unboundedly?
        # No: i2 = phi + 1 and phi = max(-1, i2): the fixpoint diverges
        # upward, detected as unconstrained.

    def test_negative_cycle_through_phi(self):
        # The max vertex pins the negative cycle at l0's bound: the exact
        # distance is 0.  The practical fixpoint over-approximates this
        # particular shape to "unconstrained", which is sound for batch use
        # (it can only keep checks, never remove live ones).
        graph = InequalityGraph()
        phi = var_node("l1")
        graph.mark_phi(phi)
        graph.add_edge(var_node("l0"), phi, 0)
        graph.add_edge(var_node("l2"), phi, 0)
        graph.add_edge(phi, var_node("l2"), -1)
        graph.add_edge(A, var_node("l0"), 0)
        from repro.core.exhaustive import exact_distance

        assert exact_distance(graph, A, phi) == 0
        assert compute_distances(graph, A)[phi] >= 0

    def test_const_arithmetic_with_const_source(self):
        graph = InequalityGraph("lower")
        dist = compute_distances(
            graph, const_node(0), extra_nodes=[const_node(5), const_node(-2)]
        )
        assert dist[const_node(5)] == -5  # negated space
        assert dist[const_node(-2)] == 2

    def test_len_source_bounds_constants(self):
        graph = InequalityGraph("upper")
        dist = compute_distances(graph, A, extra_nodes=[const_node(-1)])
        assert dist[const_node(-1)] == -1


class TestExhaustiveProve:
    def test_matches_expected(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -2)
        assert exhaustive_prove(graph, A, var_node("x"), -1)
        assert exhaustive_prove(graph, A, var_node("x"), -2)
        assert not exhaustive_prove(graph, A, var_node("x"), -3)

    def test_reuses_precomputed_distances(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -2)
        dist = compute_distances(graph, A)
        assert exhaustive_prove(graph, A, var_node("x"), -1, distances=dist)


class TestAgreementWithDemandSolver:
    def build_running_example(self):
        graph = InequalityGraph()
        phi = var_node("j1")
        graph.mark_phi(phi)
        graph.add_edge(var_node("j0"), phi, 0)
        graph.add_edge(var_node("j4"), phi, 0)
        graph.add_edge(phi, var_node("j2"), 0)
        graph.add_edge(var_node("limit"), var_node("j2"), -1)
        graph.add_edge(var_node("j2"), var_node("j4"), 1)
        graph.add_edge(A, var_node("limit"), 0)
        graph.add_edge(A, var_node("j0"), -1)
        return graph

    def test_solver_sound_wrt_distances(self):
        graph = self.build_running_example()
        dist = compute_distances(graph, A)
        for node in graph.nodes():
            for budget in range(-3, 3):
                if demand_prove(graph, A, node, budget).proven:
                    assert dist[node] <= budget, (node, budget, dist[node])
