"""Edge-case sweep across the pipeline: degenerate programs, boundary
budgets, zero-length arrays, empty hot sets, and configuration corners."""

import pytest

from repro.core.abcd import ABCDConfig, optimize_program
from repro.core.graph import InequalityGraph, const_node, len_node, var_node
from repro.core.lattice import ProofResult
from repro.core.solver import DemandProver, demand_prove
from repro.errors import BoundsCheckError
from repro.pipeline import abcd, clone_program, compile_source, run
from tests.conftest import compile_and_run, optimize_and_compare


class TestDegenerateSources:
    def test_empty_void_function(self):
        result = compile_and_run("fn noop(): void { } fn main(): int { noop(); return 1; }")
        assert result.value == 1

    def test_while_false_never_runs(self):
        src = """
fn main(): int {
  let a: int[] = new int[4];
  let i: int = 99;
  while (false) {
    a[i] = 1;
  }
  return 7;
}
"""
        # Constant folding removes the loop entirely; behaviour intact.
        base, opt, report, _ = optimize_and_compare(src)
        assert opt.value == 7

    def test_for_without_condition_break(self):
        src = """
fn main(): int {
  let n: int = 0;
  for (;;) {
    n = n + 1;
    if (n >= 5) { break; }
  }
  return n;
}
"""
        assert compile_and_run(src).value == 5

    def test_deeply_nested_ifs(self):
        depth = 20
        opening = " ".join(f"if (x > {i}) {{" for i in range(depth))
        closing = "}" * depth
        src = f"""
fn main(): int {{
  let x: int = {depth};
  let hits: int = 0;
  {opening}
  hits = hits + 1;
  {closing}
  return hits;
}}
"""
        assert compile_and_run(src).value == 1

    def test_zero_length_array_loop(self):
        src = """
fn main(): int {
  let a: int[] = new int[0];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
        base, opt, report, program = optimize_and_compare(src)
        # Loop body unreachable dynamically; checks still statically
        # provable (i < len(a) bounds i even when len is 0).
        assert opt.value == 0
        assert opt.stats.total_checks == 0

    def test_single_element_boundary(self):
        src = """
fn main(): int {
  let a: int[] = new int[1];
  a[len(a) - 1] = 42;
  return a[0];
}
"""
        base, opt, _, _ = optimize_and_compare(src)
        assert opt.value == 42

    def test_last_element_guarded_pattern(self):
        # `a[len(a) - 1]` under `if (len(a) > 0)`: the body re-computes
        # len(a) into a fresh temp, so the branch constraint lives on a
        # *different* variable — plain Table-1 ABCD cannot transfer it
        # (the lower check fails), while the Section-7.1 GVN congruence
        # edges bridge the two arraylen temps and prove everything.
        src = """
fn last(a: int[]): int {
  if (len(a) > 0) {
    return a[len(a) - 1];
  }
  return 0 - 1;
}
fn main(): int {
  let a: int[] = new int[5];
  a[4] = 99;
  let empty: int[] = new int[0];
  return last(a) + last(empty);
}
"""
        base, opt, report, program = optimize_and_compare(
            src, config=ABCDConfig(gvn_mode="augment")
        )
        assert opt.value == 98
        from repro.ir.instructions import CheckLower, CheckUpper

        last_fn = program.function("last")
        assert not any(
            isinstance(i, (CheckLower, CheckUpper))
            for i in last_fn.all_instructions()
        )
        # And the documented limitation of the plain configuration:
        _, _, plain_report, _ = optimize_and_compare(
            src, config=ABCDConfig(gvn_mode="consult")
        )
        plain_failures = [
            a
            for a in plain_report.analyses
            if a.function == "last" and not a.eliminated
        ]
        assert plain_failures

    def test_arrays_via_call_results(self):
        src = """
fn make(n: int): int[] {
  let a: int[] = new int[n];
  for (let i: int = 0; i < n; i = i + 1) {
    a[i] = i;
  }
  return a;
}
fn main(): int {
  let a: int[] = make(6);
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
        base, opt, _, _ = optimize_and_compare(src)
        assert opt.value == 15
        assert opt.stats.total_checks == 0


class TestSolverBoundaries:
    def test_budget_exactly_at_edge_weight(self):
        graph = InequalityGraph()
        graph.add_edge(len_node("A"), var_node("x"), -1)
        assert demand_prove(graph, len_node("A"), var_node("x"), -1).proven
        assert not demand_prove(graph, len_node("A"), var_node("x"), -2).proven

    def test_huge_budget_trivially_proven_via_source(self):
        graph = InequalityGraph()
        graph.add_edge(len_node("A"), var_node("x"), 5)
        assert demand_prove(graph, len_node("A"), var_node("x"), 1_000_000).proven

    def test_source_self_negative_budget_via_cycle(self):
        # a == target with c < 0 keeps exploring a's in-edges.
        graph = InequalityGraph()
        phi = var_node("p")
        graph.mark_phi(phi)
        graph.add_edge(len_node("A"), phi, -3)
        graph.add_edge(phi, len_node("A"), 0)
        outcome = demand_prove(graph, len_node("A"), len_node("A"), -2)
        assert outcome.proven  # len(A) <= phi <= len(A) - 3

    def test_memo_reduced_subsumption(self):
        graph = InequalityGraph()
        phi = var_node("p")
        back = var_node("b")
        graph.mark_phi(phi)
        graph.add_edge(var_node("init"), phi, 0)
        graph.add_edge(back, phi, 0)
        graph.add_edge(phi, back, 0)
        graph.add_edge(len_node("A"), var_node("init"), -2)
        prover = DemandProver(graph)
        first = prover.demand_prove(len_node("A"), phi, -2)
        assert first.result is ProofResult.REDUCED
        steps = prover.steps
        second = prover.demand_prove(len_node("A"), phi, -1)
        assert second.proven
        assert prover.steps == steps + 1  # answered from the memo

    def test_fuel_exhaustion_is_conservative(self):
        graph = InequalityGraph()
        previous = len_node("A")
        for i in range(50):
            node = var_node(f"x{i}")
            graph.add_edge(previous, node, 0)
            previous = node
        prover = DemandProver(graph, max_steps=5)
        outcome = prover.demand_prove(len_node("A"), previous, 0)
        assert not outcome.proven  # ran out of fuel, fails safely


class TestConfigurationCorners:
    SRC = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""

    def test_empty_hot_set_analyzes_nothing(self):
        program = compile_source(self.SRC)
        report = optimize_program(program, ABCDConfig(hot_checks=set()))
        assert report.analyzed == 0
        assert run(program, "main").stats.total_checks > 0

    def test_both_kinds_disabled(self):
        program = compile_source(self.SRC)
        report = optimize_program(program, ABCDConfig(upper=False, lower=False))
        assert report.analyzed == 0

    def test_verify_flag_off(self):
        program = compile_source(self.SRC, verify=False)
        report = abcd(program, verify=False)
        assert report.eliminated_count() == report.analyzed

    def test_config_is_not_mutated_across_functions(self):
        import dataclasses

        config = ABCDConfig()
        snapshot = dataclasses.asdict(config)
        program = compile_source(self.SRC)
        optimize_program(program, config)
        assert dataclasses.asdict(config) == snapshot


class TestRuntimeCorners:
    def test_void_entry_returns_none(self):
        program = compile_source(
            "fn main(): void { let x: int = 1; } fn other(): int { return 2; }"
        )
        assert run(program, "main").value is None

    def test_failing_check_id_stable_across_clone(self):
        src = """
fn main(): int {
  let a: int[] = new int[2];
  let i: int = 9;
  return a[i];
}
"""
        program = compile_source(src)
        twin = clone_program(program)
        with pytest.raises(BoundsCheckError) as first:
            run(program, "main")
        with pytest.raises(BoundsCheckError) as second:
            run(twin, "main")
        assert first.value.check_id == second.value.check_id

    def test_large_integer_arithmetic(self):
        src = """
fn main(): int {
  let x: int = 1000000007;
  return x * x % 1000000009;
}
"""
        assert compile_and_run(src).value == (1000000007 * 1000000007) % 1000000009

    def test_interpreter_detects_unsound_removal(self):
        # Manually delete a needed check and confirm the VM's tripwire.
        from repro.errors import MiniJRuntimeError
        from repro.ir.instructions import CheckLower, CheckUpper

        src = """
fn main(): int {
  let a: int[] = new int[2];
  let i: int = 5;
  return a[i];
}
"""
        program = compile_source(src)
        for fn in program.functions.values():
            for block in fn.blocks.values():
                block.body = [
                    i
                    for i in block.body
                    if not isinstance(i, (CheckLower, CheckUpper))
                ]
        with pytest.raises(MiniJRuntimeError, match="UNSOUND"):
            run(program, "main")


class TestHarnessSmoke:
    def test_format_figure6_output(self):
        from repro.bench.corpus import get
        from repro.bench.harness import format_figure6, run_benchmark

        result = run_benchmark(get("Sieve"), pre=False)
        table = format_figure6([result])
        assert "Sieve" in table
        assert "MEAN" in table

    def test_measure_program_on_custom_source(self):
        from repro.bench.harness import measure_program

        program = compile_source(self.COUNTING)
        result = measure_program(program, name="custom", pre=False)
        assert result.behaviour_preserved
        assert result.dynamic_upper_removed_fraction == 1.0

    COUNTING = """
fn main(): int {
  let a: int[] = new int[4];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
