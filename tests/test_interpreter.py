"""VM (interpreter) tests: semantics, exceptions, counters, cost model."""

import pytest

from repro.errors import (
    BoundsCheckError,
    DivisionByZeroError,
    MiniJRuntimeError,
    NegativeArraySizeError,
    TrapLimitExceeded,
)
from repro.pipeline import compile_source, run
from repro.runtime.values import ArrayValue, minij_div, minij_mod


def run_main(source: str, args=(), fuel=50_000_000):
    return run(compile_source(source), "main", args, fuel=fuel)


class TestArithmetic:
    def test_basic_ops(self):
        src = "fn main(): int { return 2 + 3 * 4 - 6 / 2; }"
        assert run_main(src).value == 11

    def test_division_truncates_toward_zero(self):
        assert run_main("fn main(): int { return (0 - 7) / 2; }").value == -3
        assert run_main("fn main(): int { return 7 / (0 - 2); }").value == -3

    def test_mod_sign_follows_dividend(self):
        assert run_main("fn main(): int { return (0 - 7) % 3; }").value == -1
        assert run_main("fn main(): int { return 7 % (0 - 3); }").value == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(DivisionByZeroError):
            run_main("fn main(): int { let z: int = 0; return 1 / z; }")

    def test_mod_by_zero_raises(self):
        with pytest.raises(DivisionByZeroError):
            run_main("fn main(): int { let z: int = 0; return 1 % z; }")

    @pytest.mark.parametrize(
        "lhs,rhs",
        [(7, 2), (-7, 2), (7, -2), (-7, -2), (0, 5), (13, 13)],
    )
    def test_div_mod_identity(self, lhs, rhs):
        assert minij_div(lhs, rhs) * rhs + minij_mod(lhs, rhs) == lhs


class TestComparisonsAndBooleans:
    def test_all_comparisons(self):
        src = """
fn main(): int {
  let r: int = 0;
  if (1 < 2) { r = r + 1; }
  if (2 <= 2) { r = r + 10; }
  if (3 > 2) { r = r + 100; }
  if (2 >= 3) { r = r + 1000; }
  if (4 == 4) { r = r + 10000; }
  if (4 != 4) { r = r + 100000; }
  return r;
}
"""
        assert run_main(src).value == 10111

    def test_short_circuit_protects_division(self):
        src = """
fn main(): int {
  let z: int = 0;
  if (z != 0 && 10 / z > 1) {
    return 1;
  }
  return 0;
}
"""
        assert run_main(src).value == 0


class TestArrays:
    def test_new_array_zeroed(self):
        src = """
fn main(): int {
  let a: int[] = new int[5];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
  return s;
}
"""
        assert run_main(src).value == 0

    def test_store_load_roundtrip(self):
        src = """
fn main(): int {
  let a: int[] = new int[3];
  a[0] = 7; a[1] = 8; a[2] = 9;
  return a[0] * 100 + a[1] * 10 + a[2];
}
"""
        assert run_main(src).value == 789

    def test_reference_semantics(self):
        src = """
fn scale(a: int[]): void {
  for (let i: int = 0; i < len(a); i = i + 1) { a[i] = a[i] * 2; }
}
fn main(): int {
  let a: int[] = new int[3];
  a[1] = 21;
  scale(a);
  return a[1];
}
"""
        assert run_main(src).value == 42

    def test_negative_size_raises(self):
        with pytest.raises(NegativeArraySizeError):
            run_main("fn main(): int { let n: int = 0 - 1; let a: int[] = new int[n]; return 0; }")

    def test_zero_length_array(self):
        assert run_main("fn main(): int { let a: int[] = new int[0]; return len(a); }").value == 0

    def test_array_value_helpers(self):
        array = ArrayValue.from_list([1, 2, 3])
        assert array.length == 3
        assert array.to_list() == [1, 2, 3]


class TestBoundsChecks:
    def test_upper_violation_raises(self):
        src = """
fn main(): int {
  let a: int[] = new int[3];
  let i: int = 3;
  return a[i];
}
"""
        with pytest.raises(BoundsCheckError) as excinfo:
            run_main(src)
        assert excinfo.value.kind == "upper"
        assert excinfo.value.index == 3
        assert excinfo.value.length == 3

    def test_lower_violation_raises(self):
        src = """
fn main(): int {
  let a: int[] = new int[3];
  let i: int = 0 - 1;
  return a[i];
}
"""
        with pytest.raises(BoundsCheckError) as excinfo:
            run_main(src)
        assert excinfo.value.kind == "lower"

    def test_check_counters(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
  return s;
}
"""
        stats = run_main(src).stats
        assert stats.lower_checks == 10
        assert stats.upper_checks == 10
        assert stats.total_checks == 20

    def test_per_check_counts(self):
        src = """
fn main(): int {
  let a: int[] = new int[4];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
  return s;
}
"""
        stats = run_main(src).stats
        assert sorted(stats.check_counts.values()) == [4, 4]


class TestCallsAndRecursion:
    def test_recursion(self):
        src = """
fn fib(n: int): int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main(): int { return fib(15); }
"""
        assert run_main(src).value == 610

    def test_mutual_recursion(self):
        src = """
fn is_even(n: int): bool {
  if (n == 0) { return true; }
  return is_odd(n - 1);
}
fn is_odd(n: int): bool {
  if (n == 0) { return false; }
  return is_even(n - 1);
}
fn main(): int {
  if (is_even(10)) { return 1; }
  return 0;
}
"""
        assert run_main(src).value == 1

    def test_arity_mismatch_raises(self):
        src = "fn main(): int { return 1; }"
        program = compile_source(src)
        with pytest.raises(MiniJRuntimeError):
            run(program, "main", [5])


class TestFuel:
    def test_infinite_loop_trapped(self):
        src = "fn main(): int { while (true) { } }"
        with pytest.raises(TrapLimitExceeded):
            run_main(src, fuel=10_000)


class TestCostModel:
    def test_cycles_accumulate(self):
        stats = run_main("fn main(): int { return 1 + 2; }").stats
        assert stats.cycles > 0
        assert stats.instructions > 0

    def test_checks_cost_cycles(self):
        with_checks = run_main(
            """
fn main(): int {
  let a: int[] = new int[100];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
  return s;
}
"""
        ).stats
        # A full bounds check costs 3 cycles (length load + two compares).
        assert with_checks.cycles > with_checks.instructions


class TestProfiling:
    def test_block_and_edge_counts(self):
        src = """
fn main(): int {
  let s: int = 0;
  for (let i: int = 0; i < 5; i = i + 1) { s = s + i; }
  return s;
}
"""
        from repro.runtime.interpreter import Interpreter

        program = compile_source(src)
        interp = Interpreter(program, record_profile=True)
        result = interp.run("main")
        assert result.value == 10
        assert interp.stats.block_counts
        # Some edge must have executed 5 times (the loop back edge).
        assert 5 in interp.stats.edge_counts.values()

    def test_profile_off_by_default(self):
        stats = run_main("fn main(): int { return 0; }").stats
        assert stats.block_counts == {}
