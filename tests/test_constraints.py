"""Constraint extraction (Table 1) tests: IR fragments to graph edges."""

import pytest

from repro.core.constraints import build_graphs, collect_array_vars
from repro.core.graph import const_node, len_node, var_node
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.lowering import lower_program
from repro.ssa.essa import construct_essa


def graphs_for(source: str, fn_name: str = "f", **kwargs):
    ast = parse_source(source)
    info = check_program(ast)
    program = lower_program(ast, info)
    fn = program.function(fn_name)
    construct_essa(fn)
    return fn, build_graphs(fn, **kwargs)


def edge_weights(graph, source, target):
    return [e.weight for e in graph.in_edges(target) if e.source == source]


def binop_dest(fn):
    from repro.ir.instructions import BinOp

    return next(i for i in fn.all_instructions() if isinstance(i, BinOp)).dest


class TestC1ArrayLength:
    def test_upper_edge_from_length(self):
        fn, bundle = graphs_for("fn f(a: int[]): int { return len(a); }")
        # n := arraylen a  =>  len(a) -> n / 0 in both graphs.
        length_nodes = [
            n for n in bundle.upper.nodes() if n.kind == "len"
        ]
        assert len(length_nodes) == 1
        targets = [
            e for e in bundle.upper.edges() if e.source == length_nodes[0]
        ]
        assert any(e.weight == 0 for e in targets)

    def test_requires_essa(self):
        ast = parse_source("fn f(): void { }")
        info = check_program(ast)
        program = lower_program(ast, info)
        with pytest.raises(ValueError):
            build_graphs(program.function("f"))


class TestC2C3Assignments:
    def test_constant_assignment_edge(self):
        fn, bundle = graphs_for("fn f(): int { let x: int = 7; return x; }")
        x = next(n for n in bundle.upper.nodes() if n.name.startswith("x"))
        assert edge_weights(bundle.upper, const_node(7), x) == [0]
        assert edge_weights(bundle.lower, const_node(7), x) == [0]

    def test_increment_edges_dual_weights(self):
        fn, bundle = graphs_for(
            "fn f(y: int): int { let x: int = y + 3; return x; }"
        )
        y = var_node(fn.params[0])
        x = var_node(binop_dest(fn))
        assert edge_weights(bundle.upper, y, x) == [3]
        assert edge_weights(bundle.lower, y, x) == [-3]

    def test_decrement_edges(self):
        fn, bundle = graphs_for(
            "fn f(y: int): int { let x: int = y - 2; return x; }"
        )
        y = var_node(fn.params[0])
        x = var_node(binop_dest(fn))
        assert edge_weights(bundle.upper, y, x) == [-2]
        assert edge_weights(bundle.lower, y, x) == [2]

    def test_var_plus_var_unconstrained(self):
        fn, bundle = graphs_for(
            "fn f(y: int, z: int): int { let x: int = y + z; return x; }"
        )
        # x := y + z generates no difference constraint: the sum's
        # destination never enters the graph as an edge target.
        x = var_node(binop_dest(fn))
        assert bundle.upper.in_edges(x) == []
        assert bundle.lower.in_edges(x) == []

    def test_multiplication_unconstrained(self):
        fn, bundle = graphs_for(
            "fn f(y: int): int { let x: int = y * 2; return x; }"
        )
        x = var_node(binop_dest(fn))
        assert bundle.upper.in_edges(x) == []


class TestC4Branches:
    SRC = """
fn f(x: int, y: int): int {
  if (x < y) {
    return x;
  }
  return y;
}
"""

    def test_true_edge_strict_upper(self):
        fn, bundle = graphs_for(self.SRC)
        # On the true edge x' < y: an upper in-edge of weight -1 from the
        # branch operand.
        weights = [
            e.weight
            for e in bundle.upper.edges()
            if e.target.kind == "var" and e.weight == -1
        ]
        assert weights

    def test_false_edge_lower_constraint(self):
        fn, bundle = graphs_for(self.SRC)
        # On the false edge x'' >= y: lower-graph in-edge of weight 0.
        lower_targets = [
            e for e in bundle.lower.edges() if e.weight == 0 and e.target.kind == "var"
        ]
        assert lower_targets

    def test_pi_value_flow_edges_in_both(self):
        fn, bundle = graphs_for(self.SRC)
        from repro.ir.instructions import Pi

        for instr in fn.all_instructions():
            if isinstance(instr, Pi):
                dest, src = var_node(instr.dest), var_node(instr.src)
                assert edge_weights(bundle.upper, src, dest) == [0]
                assert edge_weights(bundle.lower, src, dest) == [0]


class TestC5Checks:
    def test_check_pi_edges(self):
        fn, bundle = graphs_for("fn f(a: int[], i: int): int { return a[i]; }")
        from repro.ir.instructions import Pi

        upper_pi = next(
            i
            for i in fn.all_instructions()
            if isinstance(i, Pi) and i.predicate.arraylen_of is not None
        )
        dest = var_node(upper_pi.dest)
        length = len_node(upper_pi.predicate.arraylen_of)
        assert edge_weights(bundle.upper, length, dest) == [-1]

        lower_pi = next(
            i
            for i in fn.all_instructions()
            if isinstance(i, Pi)
            and i.predicate.rel == "ge"
        )
        dest = var_node(lower_pi.dest)
        assert edge_weights(bundle.lower, const_node(0), dest) == [0]


class TestPhi:
    SRC = """
fn f(c: int): int {
  let x: int = 0;
  if (c > 0) {
    x = 5;
  }
  return x;
}
"""

    def test_phi_marked_max_in_both_graphs(self):
        fn, bundle = graphs_for(self.SRC)
        assert bundle.upper.phi_nodes
        assert bundle.upper.phi_nodes == bundle.lower.phi_nodes

    def test_phi_in_edges_weight_zero(self):
        fn, bundle = graphs_for(self.SRC)
        phi = next(iter(bundle.upper.phi_nodes))
        for edge in bundle.upper.in_edges(phi):
            assert edge.weight == 0


class TestAllocationFacts:
    SRC = "fn f(n: int): int { let a: int[] = new int[n]; return len(a); }"

    def test_enabled_by_default(self):
        fn, bundle = graphs_for(self.SRC)
        n = var_node(fn.params[0])
        length_nodes = [x for x in bundle.upper.nodes() if x.kind == "len"]
        assert any(
            edge_weights(bundle.upper, ln, n) == [0] for ln in length_nodes
        )

    def test_disabled(self):
        fn, bundle = graphs_for(self.SRC, allocation_facts=False)
        n = var_node(fn.params[0])
        assert bundle.upper.in_edges(n) == []

    def test_const_zero_length_skipped_in_lower(self):
        fn, bundle = graphs_for(
            "fn f(): int { let a: int[] = new int[0]; return len(a); }"
        )
        assert edge_weights(bundle.lower, len_node_of(bundle), const_node(0)) == []

    def test_length_nonneg_axiom_in_lower(self):
        fn, bundle = graphs_for(self.SRC)
        length_nodes = [x for x in bundle.lower.nodes() if x.kind == "len"]
        for ln in length_nodes:
            assert 0 in edge_weights(bundle.lower, const_node(0), ln)


def len_node_of(bundle):
    return next(n for n in bundle.lower.nodes() if n.kind == "len")


class TestArrayVars:
    def test_direct_and_flow_detection(self):
        src = """
fn f(a: int[]): int {
  let b: int[] = a;
  let n: int = len(b);
  return n;
}
"""
        ast = parse_source(src)
        info = check_program(ast)
        program = lower_program(ast, info)
        fn = program.function("f")
        construct_essa(fn)
        arrays = collect_array_vars(fn)
        assert any(v.startswith("a") for v in arrays)
        assert any(v.startswith("b") for v in arrays)

    def test_scalar_not_detected(self):
        fn, bundle = graphs_for("fn f(x: int): int { return x + 1; }")
        assert bundle.array_vars == set()


class TestCycleInvariant:
    """Every cycle of each graph must contain a φ vertex (the solver's
    soundness precondition)."""

    @pytest.mark.parametrize(
        "source",
        [
            """
fn f(a: int[]): int {
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
""",
            """
fn f(n: int): int {
  let a: int[] = new int[n];
  let k: int = n - 1;
  while (k >= 0) {
    a[k] = k;
    k = k - 1;
  }
  return len(a);
}
""",
        ],
    )
    def test_no_phi_free_cycles(self, source):
        fn, bundle = graphs_for(source)
        for graph in (bundle.upper, bundle.lower):
            assert_no_phi_free_cycle(graph)


def assert_no_phi_free_cycle(graph):
    """DFS over non-φ vertices only must be acyclic."""
    color = {}

    def visit(node):
        color[node] = "grey"
        for edge in graph.in_edges(node):
            source = edge.source
            if graph.is_phi(source):
                continue
            state = color.get(source)
            if state == "grey":
                raise AssertionError(f"φ-free cycle through {source}")
            if state is None:
                visit(source)
        color[node] = "black"

    for node in graph.nodes():
        if node not in color and not graph.is_phi(node):
            visit(node)
