"""Additional e-SSA and constraint-extraction scenarios."""

import pytest

from repro.core.constraints import build_graphs
from repro.core.graph import const_node, len_node, var_node
from repro.core.solver import demand_prove
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.instructions import Pi
from repro.ir.lowering import lower_program
from repro.ssa.essa import NEGATED_REL, SWAPPED_REL, construct_essa
from tests.conftest import optimize_and_compare


def essa_fn(source: str, name: str = "f"):
    ast = parse_source(source)
    info = check_program(ast)
    program = lower_program(ast, info)
    fn = program.function(name)
    construct_essa(fn)
    return fn


class TestRelationTables:
    def test_negation_is_involutive(self):
        for rel, negated in NEGATED_REL.items():
            assert NEGATED_REL[negated] == rel

    def test_swap_is_involutive(self):
        for rel, swapped in SWAPPED_REL.items():
            assert SWAPPED_REL[swapped] == rel

    def test_eq_fixed_points(self):
        assert SWAPPED_REL["eq"] == "eq"
        assert NEGATED_REL["eq"] == "ne"


class TestBranchShapes:
    def test_eq_branch_pis_both_graphs(self):
        fn = essa_fn(
            """
fn f(x: int, y: int): int {
  if (x == y) {
    return x;
  }
  return y;
}
"""
        )
        eq_pis = [
            i
            for i in fn.all_instructions()
            if isinstance(i, Pi) and i.predicate.rel == "eq"
        ]
        assert len(eq_pis) == 2  # both operands on the true edge
        bundle = build_graphs(fn)
        for pi in eq_pis:
            dest = var_node(pi.dest)
            # eq contributes to both graphs.
            assert bundle.upper.in_edges(dest)
            assert bundle.lower.in_edges(dest)

    def test_ge_branch_constraint_lower_only(self):
        fn = essa_fn(
            """
fn f(x: int): int {
  if (x >= 3) {
    return x;
  }
  return 0;
}
"""
        )
        ge_pi = next(
            i
            for i in fn.all_instructions()
            if isinstance(i, Pi) and i.predicate.rel == "ge"
        )
        bundle = build_graphs(fn)
        dest = var_node(ge_pi.dest)
        # x >= 3 bounds x from below: prove x >= 0 through it.
        assert demand_prove(bundle.lower, const_node(0), dest, 0).proven

    def test_short_circuit_condition_pis(self):
        # Each comparison of the && lowers into its own branch, so both
        # conjuncts generate πs.
        fn = essa_fn(
            """
fn f(a: int[], i: int): int {
  if (i >= 0 && i < len(a)) {
    return a[i];
  }
  return 0;
}
"""
        )
        rels = sorted(
            i.predicate.rel
            for i in fn.all_instructions()
            if isinstance(i, Pi) and i.predicate.other is not None
        )
        assert "ge" in rels and "lt" in rels
        bundle = build_graphs(fn)
        # The access inside the guard is fully provable.
        from repro.ir.instructions import CheckUpper

        check = next(
            i for i in fn.all_instructions() if isinstance(i, CheckUpper)
        )
        assert demand_prove(
            bundle.upper, len_node(check.array), var_node(check.index.name), -1
        ).proven

    def test_branch_on_boolean_variable_no_pis(self):
        fn = essa_fn(
            """
fn f(flag: bool, x: int): int {
  if (flag) {
    return x;
  }
  return 0;
}
"""
        )
        # Branch condition is not a comparison at the branch: no C4 πs.
        branch_pis = [
            i
            for i in fn.all_instructions()
            if isinstance(i, Pi) and i.predicate.other is not None
            and i.predicate.rel != "ge"  # allow check πs elsewhere
        ]
        assert branch_pis == []


class TestDualLowerBound:
    def test_downward_scan_lower_checks(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let s: int = 0;
  let i: int = len(a) - 1;
  while (i > 0) {
    s = s + a[i] + a[i - 1];
    i = i - 1;
  }
  return s;
}
"""
        base, opt, report, _ = optimize_and_compare(src)
        assert report.eliminated_count("lower") == report.analyzed_count("lower")
        assert report.eliminated_count("upper") == report.analyzed_count("upper")
        assert opt.stats.total_checks == 0

    def test_negative_start_loop_lower_check_fails(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let s: int = 0;
  let i: int = 0 - 3;
  while (i < 5) {
    if (i >= 0) {
      s = s + a[i];
    }
    i = i + 1;
  }
  return s;
}
"""
        # Guarded access: lower check provable via the i >= 0 π; upper via
        # i < 5 <= 10 through the allocation constant.
        base, opt, report, _ = optimize_and_compare(src)
        assert opt.stats.total_checks == 0

    def test_modulo_index_needs_guard(self):
        src = """
fn main(): int {
  let a: int[] = new int[7];
  let s: int = 0;
  for (let i: int = 0; i < 50; i = i + 1) {
    let h: int = (i * 31) % 7;
    if (h >= 0 && h < len(a)) {
      s = s + a[h];
    }
  }
  return s;
}
"""
        base, opt, report, _ = optimize_and_compare(src)
        assert opt.stats.total_checks == 0


class TestAmplifyingCyclesInPrograms:
    def test_unbounded_growth_not_proven(self):
        # i doubles each iteration: no difference constraint bounds it.
        src = """
fn main(): int {
  let a: int[] = new int[64];
  let s: int = 0;
  let i: int = 1;
  while (i < 64) {
    s = s + a[i];
    i = i * 2;
  }
  return s;
}
"""
        base, opt, report, _ = optimize_and_compare(src)
        # The i < 64 branch π still bounds the access: i <= 63 <= len-1
        # via the allocation constant.  Lower bound of i is lost through
        # the multiplication, so the lower check survives.
        failing = [a for a in report.analyses if not a.eliminated]
        assert all(a.kind == "lower" for a in failing)

    def test_increment_beyond_bound_check_survives(self):
        src = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    let j: int = i + 2;
    if (j < len(a)) {
      s = s + a[j];
    }
    s = s + a[i];
  }
  return s;
}
"""
        base, opt, report, _ = optimize_and_compare(src)
        assert opt.stats.total_checks == 0
