"""Dominance, liveness, loop, and CFG-utility tests."""

import pytest

from repro.analysis.cfg_utils import critical_edges, split_critical_edges, split_edge
from repro.analysis.dominance import DominatorTree, dominance_frontiers
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_natural_loops, loop_depths
from repro.frontend.types import VOID
from repro.ir.function import Function
from repro.ir.instructions import Branch, Const, Copy, Jump, Phi, Return, Var


def diamond() -> Function:
    """entry -> (left|right) -> join."""
    fn = Function("d", ["c"], [], VOID)
    entry = fn.new_block("entry")
    left = fn.new_block("left")
    right = fn.new_block("right")
    join = fn.new_block("join")
    fn.entry = entry.label
    entry.terminator = Branch(Var("c"), left.label, right.label)
    left.terminator = Jump(join.label)
    right.terminator = Jump(join.label)
    join.terminator = Return(None)
    return fn


def loop_cfg() -> Function:
    """entry -> header <-> body; header -> exit."""
    fn = Function("l", ["c"], [], VOID)
    entry = fn.new_block("entry")
    header = fn.new_block("header")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    fn.entry = entry.label
    entry.terminator = Jump(header.label)
    header.terminator = Branch(Var("c"), body.label, exit_.label)
    body.terminator = Jump(header.label)
    exit_.terminator = Return(None)
    return fn


class TestDominators:
    def test_entry_dominates_everything(self):
        fn = diamond()
        domtree = DominatorTree.compute(fn)
        for label in fn.blocks:
            assert domtree.dominates(fn.entry, label)

    def test_dominance_is_reflexive(self):
        fn = diamond()
        domtree = DominatorTree.compute(fn)
        for label in fn.blocks:
            assert domtree.dominates(label, label)

    def test_branch_arms_do_not_dominate_join(self):
        fn = diamond()
        domtree = DominatorTree.compute(fn)
        assert not domtree.dominates("left1", "join3")
        assert not domtree.dominates("right2", "join3")

    def test_idom_of_join_is_entry(self):
        fn = diamond()
        domtree = DominatorTree.compute(fn)
        assert domtree.immediate_dominator("join3") == fn.entry

    def test_idom_of_entry_is_none(self):
        domtree = DominatorTree.compute(diamond())
        assert domtree.immediate_dominator("entry0") is None

    def test_loop_header_dominates_body(self):
        fn = loop_cfg()
        domtree = DominatorTree.compute(fn)
        assert domtree.dominates("header1", "body2")
        assert not domtree.dominates("body2", "header1")

    def test_strict_dominance(self):
        domtree = DominatorTree.compute(diamond())
        assert domtree.strictly_dominates("entry0", "join3")
        assert not domtree.strictly_dominates("join3", "join3")

    def test_preorder_parents_first(self):
        domtree = DominatorTree.compute(loop_cfg())
        order = domtree.preorder()
        assert order.index("entry0") < order.index("header1")
        assert order.index("header1") < order.index("body2")

    def test_depths(self):
        domtree = DominatorTree.compute(loop_cfg())
        assert domtree.depth("entry0") == 0
        assert domtree.depth("header1") == 1


class TestDominanceFrontiers:
    def test_diamond_frontier_is_join(self):
        fn = diamond()
        frontiers = dominance_frontiers(fn)
        assert frontiers["left1"] == {"join3"}
        assert frontiers["right2"] == {"join3"}
        assert frontiers["join3"] == set()

    def test_loop_header_in_own_frontier(self):
        fn = loop_cfg()
        frontiers = dominance_frontiers(fn)
        assert "header1" in frontiers["header1"]
        assert "header1" in frontiers["body2"]


class TestLiveness:
    def test_param_live_through_use(self):
        fn = diamond()
        # join returns nothing; make left use c so it is live into left.
        fn.blocks["left1"].body.append(Copy("x", Var("c")))
        info = compute_liveness(fn)
        assert info.is_live_in("left1", "c")
        assert not info.is_live_in("join3", "c")

    def test_def_kills_liveness(self):
        fn = diamond()
        fn.blocks["left1"].body.append(Copy("c", Const(0)))
        info = compute_liveness(fn)
        # c redefined at top of left; the inbound value is not live there...
        assert not info.is_live_in("left1", "c")

    def test_phi_operand_live_out_of_pred(self):
        fn = diamond()
        fn.blocks["left1"].body.append(Copy("v1", Const(1)))
        fn.blocks["right2"].body.append(Copy("v2", Const(2)))
        fn.blocks["join3"].phis.append(
            Phi("v", {"left1": Var("v1"), "right2": Var("v2")})
        )
        info = compute_liveness(fn)
        assert "v1" in info.live_out["left1"]
        assert "v2" in info.live_out["right2"]
        # But the operands are not live-in to the join itself.
        assert "v1" not in info.live_in["join3"]

    def test_loop_carried_liveness(self):
        fn = loop_cfg()
        fn.blocks["body2"].body.append(Copy("x", Var("i")))
        fn.blocks["entry0"].body.append(Copy("i", Const(0)))
        info = compute_liveness(fn)
        assert info.is_live_in("header1", "i")


class TestLoops:
    def test_natural_loop_found(self):
        loops = find_natural_loops(loop_cfg())
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "header1"
        assert loop.body == {"header1", "body2"}

    def test_no_loops_in_diamond(self):
        assert find_natural_loops(diamond()) == []

    def test_loop_depths(self):
        depths = loop_depths(loop_cfg())
        assert depths["body2"] == 1
        assert depths["entry0"] == 0


class TestEdgeSplitting:
    def test_critical_edge_detection(self):
        fn = Function("c", ["c"], [], VOID)
        a = fn.new_block("a")
        b = fn.new_block("b")
        join = fn.new_block("join")
        fn.entry = a.label
        a.terminator = Branch(Var("c"), b.label, join.label)
        b.terminator = Jump(join.label)
        join.terminator = Return(None)
        edges = critical_edges(fn)
        assert (a.label, join.label) in edges

    def test_split_critical_edges_removes_them(self):
        fn = Function("c", ["c"], [], VOID)
        a = fn.new_block("a")
        b = fn.new_block("b")
        join = fn.new_block("join")
        fn.entry = a.label
        a.terminator = Branch(Var("c"), b.label, join.label)
        b.terminator = Jump(join.label)
        join.terminator = Return(None)
        count = split_critical_edges(fn)
        assert count == 1
        assert critical_edges(fn) == []

    def test_split_edge_rewrites_phis(self):
        fn = diamond()
        fn.blocks["join3"].phis.append(
            Phi("v", {"left1": Const(1), "right2": Const(2)})
        )
        middle = split_edge(fn, "left1", "join3")
        phi = fn.blocks["join3"].phis[0]
        assert middle.label in phi.incomings
        assert "left1" not in phi.incomings

    def test_split_edge_preserves_execution(self):
        from repro.ir.function import Program
        from repro.runtime.interpreter import run_program

        fn = diamond()
        fn.blocks["join3"].terminator = Return(Var("c"))
        split_edge(fn, "left1", "join3")
        program = Program()
        program.add_function(fn)
        assert run_program(program, "d", [1]).value == 1
