"""CLI tests (direct invocation of repro.cli.main)."""

import pytest

from repro.cli import main

SRC = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""

FAILING_SRC = """
fn main(): int {
  let a: int[] = new int[2];
  let i: int = 5;
  return a[i];
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mj"
    path.write_text(SRC)
    return str(path)


class TestRun:
    def test_run_prints_result_and_checks(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        out = capsys.readouterr().out
        assert "result: 28" in out
        assert "checks: 32" in out

    def test_run_optimized_removes_checks(self, source_file, capsys):
        assert main(["run", source_file, "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "result: 28" in out
        assert "checks: 0" in out

    def test_runtime_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.mj"
        path.write_text(FAILING_SRC)
        assert main(["run", str(path)]) == 1
        assert "bounds check" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.mj"]) == 2
        assert "error" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.mj"
        path.write_text("fn main(): int { return true; }")
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        # One-line file:line:col: message diagnostic, not a traceback.
        assert err.startswith(f"{path}:1:")
        assert "Traceback" not in err

    def test_syntax_error_locates_offending_line(self, tmp_path, capsys):
        path = tmp_path / "syntax.mj"
        path.write_text("fn main(): int {\n  let x int = 3;\n  return x;\n}")
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith(f"{path}:2:")


class TestOptimize:
    def test_report_table(self, source_file, capsys):
        assert main(["optimize", source_file]) == 0
        out = capsys.readouterr().out
        assert "eliminated 4 of 4 checks" in out
        assert "mean steps/check" in out

    def test_compare_flag(self, source_file, capsys):
        assert main(["optimize", source_file, "--compare"]) == 0
        out = capsys.readouterr().out
        assert "dynamic checks: 32 -> 0" in out

    def test_emit_ir(self, source_file, capsys):
        assert main(["optimize", source_file, "--emit-ir"]) == 0
        out = capsys.readouterr().out
        assert "fn main()" in out

    def test_upper_only(self, source_file, capsys):
        assert main(["optimize", source_file, "--upper-only"]) == 0
        out = capsys.readouterr().out
        assert "2/2 upper, 0/0 lower" in out

    def test_pre_flag(self, tmp_path, capsys):
        path = tmp_path / "pre.mj"
        path.write_text("""
fn kernel(a: int[], k: int, n: int): int {
  let s: int = 0;
  let r: int = 0;
  while (r < n) {
    s = s + a[k];
    r = r + 1;
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[8];
  return kernel(a, 3, 50);
}
""")
        assert main(["optimize", str(path), "--pre", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "pre(" in out

    def test_robustness_summary_line(self, source_file, capsys):
        assert main(["optimize", source_file]) == 0
        out = capsys.readouterr().out
        assert "robustness: 0 pass rollback(s), 0 budget-exhausted check(s)" in out

    def test_max_steps_budget_reports_exhaustion(self, source_file, capsys):
        assert main(["optimize", source_file, "--max-steps", "1"]) == 0
        out = capsys.readouterr().out
        # Exhausted proofs keep their checks and are flagged in the table.
        assert "budget!" in out
        assert "eliminated 0 of 4 checks" in out

    def test_max_steps_budget_still_executes_correctly(self, source_file, capsys):
        assert main(["run", source_file, "--optimize", "--max-steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "result: 28" in out
        assert "checks: 32" in out  # nothing proven, every check retained


class TestIRAndDot:
    def test_ir_whole_program(self, source_file, capsys):
        assert main(["ir", source_file]) == 0
        out = capsys.readouterr().out
        assert "checkupper" in out
        assert ":= phi(" in out

    def test_ir_single_function(self, source_file, capsys):
        assert main(["ir", source_file, "--fn", "main"]) == 0
        assert "fn main()" in capsys.readouterr().out

    def test_dot_cfg(self, source_file, capsys):
        assert main(["dot", source_file, "--fn", "main"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_dot_inequality_graph(self, source_file, capsys):
        assert main(["dot", source_file, "--fn", "main", "--graph", "upper"]) == 0
        out = capsys.readouterr().out
        assert "doublecircle" in out  # φ vertices present


class TestBench:
    def test_bench_subset(self, capsys):
        assert main(["bench", "--names", "Sieve"]) == 0
        out = capsys.readouterr().out
        assert "Sieve" in out
        assert "Figure 6" in out

    def test_bench_unknown_name(self, capsys):
        assert main(["bench", "--names", "nothing"]) == 1


class TestCacheCLI:
    def cache_args(self, tmp_path):
        return str(tmp_path / "cache")

    def test_optimize_cache_miss_then_hit(self, source_file, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        assert main(["optimize", source_file, "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "cache: miss" in first
        assert "stored" in first
        assert main(["optimize", source_file, "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "cache: hit" in second
        assert "re-checked" in second

    def test_cache_stats_and_verify(self, source_file, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        main(["optimize", source_file, "--cache-dir", cache])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert main(["cache", "verify", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "replayed" in out

    def test_cache_verify_rejects_corruption(self, source_file, tmp_path, capsys):
        from repro.robustness.faults import DISK_FAULTS
        from repro.store import CertStore

        cache = self.cache_args(tmp_path)
        main(["optimize", source_file, "--cache-dir", cache])
        capsys.readouterr()
        store = CertStore(cache)
        fingerprint = next(store.iter_fingerprints())
        DISK_FAULTS["disk-flip-payload-byte"].corrupt(store.entry_path(fingerprint))
        assert main(["cache", "verify", "--cache-dir", cache]) == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_cache_gc_and_evict(self, source_file, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        main(["optimize", source_file, "--cache-dir", cache])
        capsys.readouterr()
        from repro.store import CertStore

        fingerprint = next(CertStore(cache).iter_fingerprints())
        assert main(["cache", "evict", fingerprint, "--cache-dir", cache]) == 0
        assert main(["cache", "evict", fingerprint, "--cache-dir", cache]) == 1
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache, "--max-entries", "0"]) == 0

    def test_cache_stats_json(self, source_file, tmp_path, capsys):
        import json

        cache = self.cache_args(tmp_path)
        main(["optimize", source_file, "--cache-dir", cache])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
