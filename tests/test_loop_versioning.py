"""Loop versioning baseline tests."""

import pytest

from repro.baselines.loop_versioning import (
    version_loops,
    version_program_loops,
)
from repro.errors import BoundsCheckError
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.instructions import CheckLower, CheckUpper
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_program
from repro.runtime.interpreter import run_program
from repro.runtime.values import ArrayValue
from repro.ssa.essa import construct_essa


def lowered(source: str):
    ast = parse_source(source)
    info = check_program(ast)
    return lower_program(ast, info)


COUNTING_SRC = """
fn sum(a: int[], n: int): int {
  let s: int = 0;
  let i: int = 0;
  while (i < n) {
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[16];
  for (let j: int = 0; j < len(a); j = j + 1) {
    a[j] = j * 2;
  }
  return sum(a, 16);
}
"""


class TestVersioningTransformation:
    def test_counting_loop_versioned(self):
        program = lowered(COUNTING_SRC)
        report = version_program_loops(program)
        assert report.loops_versioned >= 2  # sum's while and main's for
        assert report.checks_removed_in_fast_path >= 2
        assert report.blocks_added > 0
        verify_program(program)

    def test_behaviour_preserved_in_range(self):
        program = lowered(COUNTING_SRC)
        expected = run_program(program, "main").value
        version_program_loops(program)
        assert run_program(program, "main").value == expected == 240

    def test_fast_path_taken_when_safe(self):
        program = lowered(COUNTING_SRC)
        base_checks = run_program(program, "main").stats.total_checks
        version_program_loops(program)
        versioned_checks = run_program(program, "main").stats.total_checks
        # The candidate checks disappear dynamically on the fast path.
        assert versioned_checks < base_checks / 2

    def test_slow_path_on_unsafe_bound(self):
        program = lowered(COUNTING_SRC)
        version_program_loops(program)
        # n exceeds the array length: the version test fails, the slow
        # (checked) loop runs, and the original check raises.
        array = ArrayValue(4)
        with pytest.raises(BoundsCheckError) as excinfo:
            run_program(program, "sum", [array, 10])
        assert excinfo.value.kind == "upper"
        assert excinfo.value.index == 4

    def test_same_check_id_as_unversioned_on_failure(self):
        plain = lowered(COUNTING_SRC)
        versioned = lowered(COUNTING_SRC)
        version_program_loops(versioned)
        array = ArrayValue(4)
        with pytest.raises(BoundsCheckError) as plain_exc:
            run_program(plain, "sum", [array, 10])
        with pytest.raises(BoundsCheckError) as versioned_exc:
            run_program(versioned, "sum", [array, 10])
        assert plain_exc.value.check_id == versioned_exc.value.check_id

    def test_offset_accesses_covered(self):
        src = """
fn pairs(a: int[], n: int): int {
  let s: int = 0;
  let i: int = 0;
  while (i < n - 1) {
    s = s + a[i] + a[i + 1];
    i = i + 1;
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[8];
  for (let j: int = 0; j < len(a); j = j + 1) {
    a[j] = j;
  }
  return pairs(a, 8);
}
"""
        program = lowered(src)
        expected = run_program(program, "main").value
        version_program_loops(program)
        assert run_program(program, "main").value == expected
        # a[i+1] in-range boundary: i <= n-3, index <= n-2 < len; and the
        # version test must accept the full-range call.
        result = run_program(program, "pairs", [ArrayValue(8), 8])
        assert result.value == 0


class TestVersioningLimits:
    def test_downward_loop_not_versioned(self):
        # Decreasing induction variables are outside this baseline's
        # pattern (ABCD handles them fine).
        src = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  let i: int = 7;
  while (i >= 0) {
    s = s + a[i];
    i = i - 1;
  }
  return s;
}
"""
        program = lowered(src)
        report = version_program_loops(program)
        assert report.loops_versioned == 0

    def test_data_dependent_index_not_candidate(self):
        src = """
fn main(): int {
  let a: int[] = new int[8];
  let idx: int[] = new int[8];
  let s: int = 0;
  let i: int = 0;
  while (i < 8) {
    s = s + a[idx[i]];
    i = i + 1;
  }
  return s;
}
"""
        program = lowered(src)
        report = version_program_loops(program)
        # idx[i] is a candidate; a[idx[i]] is not.
        fn = program.function("main")
        fast_checks = [
            i
            for label in fn.blocks
            if label.startswith("fast")
            for i in fn.blocks[label].body
            if isinstance(i, (CheckLower, CheckUpper))
        ]
        assert fast_checks  # the a[...] checks survive in the fast clone
        assert run_program(program, "main").value == 0
        del report

    def test_variant_bound_not_versioned(self):
        src = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  let i: int = 0;
  let n: int = 8;
  while (i < n) {
    s = s + a[i];
    n = n - 1;
    i = i + 1;
  }
  return s;
}
"""
        program = lowered(src)
        report = version_program_loops(program)
        assert report.loops_versioned == 0

    def test_requires_non_ssa(self):
        program = lowered(COUNTING_SRC)
        for fn in program.functions.values():
            construct_essa(fn)
        with pytest.raises(ValueError):
            version_loops(program.function("main"), program)


class TestVersioningDownstream:
    def test_essa_builds_after_versioning(self):
        program = lowered(COUNTING_SRC)
        version_program_loops(program)
        for fn in program.functions.values():
            construct_essa(fn)
        verify_program(program)
        assert run_program(program, "main").value == 240

    def test_code_growth_measured(self):
        program = lowered(COUNTING_SRC)
        before = sum(1 for fn in program.functions.values() for _ in fn.all_instructions())
        report = version_program_loops(program)
        after = sum(1 for fn in program.functions.values() for _ in fn.all_instructions())
        assert after > before
        assert report.blocks_added > 0
