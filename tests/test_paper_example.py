"""The paper's running example, end to end (Figures 1, 3, 4 and Section 6).

The headline claim: "ABCD can eliminate all four bound checks in this
example" — the four checks of the bidirectional bubble sort's scan loops
(the paper presents one loop; both directions are covered by the corpus
program).  These tests pin the claim, the e-SSA shape of Figure 3, the
inequality-graph shape of Figure 4, and the Section-6 partially redundant
variant obtained by deleting ``limit := A.length``.
"""

import pytest

from repro.core.abcd import ABCDConfig, optimize_program
from repro.core.constraints import build_graphs
from repro.core.graph import len_node
from repro.core.solver import demand_prove
from repro.ir.instructions import CheckLower, CheckUpper, Phi, Pi
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.profiler import collect_profile
from repro.ssa.construct import base_name

#: Figure 1's fragment (first inner loop), verbatim modulo syntax.
FIGURE1_SRC = """
fn sort(a: int[]): void {
  let limit: int = len(a);
  let st: int = 0 - 1;
  while (st < limit) {
    st = st + 1;
    limit = limit - 1;
    for (let j: int = st; j < limit; j = j + 1) {
      if (a[j] > a[j + 1]) {
        let t: int = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
}
fn main(): int {
  let a: int[] = new int[24];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = (i * 37 + 11) % 50;
  }
  sort(a);
  let bad: int = 0;
  for (let i: int = 0; i < len(a) - 1; i = i + 1) {
    if (a[i] > a[i + 1]) {
      bad = bad + 1;
    }
  }
  return bad;
}
"""


def compiled():
    return compile_source(FIGURE1_SRC)


class TestESSAShape:
    """Figure 3: φs at the two loop headers, πs at the branch exits and
    after every check."""

    def test_phis_for_loop_variables(self):
        fn = compiled().function("sort")
        merged = {
            base_name(i.dest)
            for i in fn.all_instructions()
            if isinstance(i, Phi)
        }
        assert {"st", "limit", "j"} <= merged

    def test_pis_after_every_check(self):
        fn = compiled().function("sort")
        for label in fn.reachable_blocks():
            body = fn.blocks[label].body
            for position, instr in enumerate(body):
                if isinstance(instr, (CheckLower, CheckUpper)):
                    follower = body[position + 1]
                    assert isinstance(follower, Pi), (
                        f"check at {label}:{position} not followed by π"
                    )

    def test_branch_pis_on_loop_conditions(self):
        fn = compiled().function("sort")
        branch_pis = [
            i
            for i in fn.all_instructions()
            if isinstance(i, Pi) and i.predicate.arraylen_of is None
            and i.predicate.other is not None
        ]
        # st<limit and j<limit each produce πs for both operands on both
        # edges, plus the a[j] > a[j+1] comparison πs.
        assert len(branch_pis) >= 8


class TestFigure4Graph:
    def test_j_check_distance_is_minus_two(self):
        """Paper: "The distance between A.length and j2 is -2"."""
        fn = compiled().function("sort")
        bundle = build_graphs(fn)
        check = next(
            i
            for label in fn.reachable_blocks()
            for i in fn.blocks[label].body
            if isinstance(i, CheckUpper) and base_name(i.index.name) == "j"
        )
        source = len_node(check.array)
        from repro.core.graph import var_node

        target = var_node(check.index.name)
        assert demand_prove(bundle.upper, source, target, -2).proven
        assert not demand_prove(bundle.upper, source, target, -3).proven

    def test_graph_has_max_vertices_for_phis(self):
        fn = compiled().function("sort")
        bundle = build_graphs(fn)
        phi_bases = {base_name(n.name) for n in bundle.upper.phi_nodes}
        assert {"st", "limit", "j"} <= phi_bases


class TestHeadlineClaim:
    def test_all_sort_checks_eliminated(self):
        program = compiled()
        base = clone_program(program)
        report = optimize_program(program, ABCDConfig())
        sort_checks = [a for a in report.analyses if a.function == "sort"]
        assert sort_checks, "no checks analyzed in sort"
        assert all(a.eliminated for a in sort_checks)
        # Not a single dynamic check left in sort's loops.
        fn = program.function("sort")
        assert not any(
            isinstance(i, (CheckLower, CheckUpper)) for i in fn.all_instructions()
        )
        # (The Figure-1 fragment keeps only the forward scan, so the array
        # is not fully sorted — behaviour equality is the invariant.)
        assert run(program, "main").value == run(base, "main").value

    def test_first_access_checks_need_global_reasoning(self):
        """The a[j] checks of the first access in the loop body can only be
        proven through the loop φ/π chains — global scope.  (Later
        accesses to the same index in the same block are *locally*
        subsumed by the first one's C5 π, which Figure 6 counts as local.)
        """
        program = compiled()
        report = optimize_program(program, ABCDConfig())
        sort_uppers = [
            a
            for a in report.analyses
            if a.function == "sort" and a.kind == "upper" and a.eliminated
        ]
        assert sort_uppers
        first_per_block = {}
        for analysis in sort_uppers:
            first_per_block.setdefault(analysis.block, analysis)
        assert all(a.scope == "global" for a in first_per_block.values())
        # And local subsumption does occur for the repeated accesses.
        assert any(a.scope == "local" for a in sort_uppers)

    def test_steps_are_modest(self):
        program = compiled()
        report = optimize_program(program, ABCDConfig())
        assert report.mean_steps < 60  # sparse representation, no blowup


class TestSection6PartialRedundancy:
    """Removing ``limit := len(a)`` (the paper's device) disconnects
    ``limit0`` from ``A.length``: the j-loop checks become loop-invariant
    partially redundant, and PRE makes them fully redundant by inserting a
    compensating check."""

    SRC = """
fn scan(a: int[], limit: int): int {
  let s: int = 0;
  for (let j: int = 0; j < limit; j = j + 1) {
    s = s + a[j];
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[24];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
  }
  return scan(a, len(a));
}
"""

    def test_full_redundancy_fails_without_the_length_link(self):
        program = compile_source(self.SRC)
        report = optimize_program(program, ABCDConfig())
        failing = [
            a
            for a in report.analyses
            if a.function == "scan" and a.kind == "upper" and not a.eliminated
        ]
        assert failing

    def test_pre_recovers_the_check(self):
        program = compile_source(self.SRC)
        base = clone_program(program)
        profile = collect_profile(program, "main")
        report = optimize_program(program, ABCDConfig(pre=True), profile)
        pre_applied = [a for a in report.analyses if a.pre_applied]
        assert pre_applied
        base_run = run(base, "main")
        opt_run = run(program, "main")
        assert base_run.value == opt_run.value
        survived = opt_run.stats.total_checks + opt_run.stats.speculative_checks
        assert survived < base_run.stats.total_checks / 4
