"""Public pipeline facade tests."""

import pytest

from repro import ABCDConfig, abcd, clone_program, compile_source, profile, run
from repro.errors import TypeCheckError


SRC = """
fn main(): int {
  let a: int[] = new int[6];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""


class TestCompileSource:
    def test_produces_essa_program(self):
        program = compile_source(SRC)
        assert program.function("main").ssa_form == "essa"

    def test_compile_errors_propagate(self):
        with pytest.raises(TypeCheckError):
            compile_source("fn main(): int { return true; }")

    def test_standard_opts_flag(self):
        unopt = compile_source(SRC, standard_opts=False)
        opt = compile_source(SRC)
        count = lambda p: sum(
            1 for _ in p.function("main").all_instructions()
        )
        assert count(opt) <= count(unopt)


class TestRoundTrip:
    def test_compile_run(self):
        program = compile_source(SRC)
        assert run(program).value == 15

    def test_clone_is_independent(self):
        program = compile_source(SRC)
        twin = clone_program(program)
        abcd(program)
        # The clone keeps its checks.
        assert run(twin).stats.total_checks > 0
        assert run(program).stats.total_checks == 0

    def test_abcd_returns_report(self):
        program = compile_source(SRC)
        report = abcd(program)
        assert report.analyzed == 4
        assert report.eliminated_count() == 4
        assert report.mean_steps > 0

    def test_pre_requires_profile(self):
        program = compile_source(SRC)
        with pytest.raises(ValueError):
            abcd(program, pre=True)

    def test_pre_with_profile(self):
        program = compile_source(SRC)
        prof = profile(program)
        report = abcd(program, pre=True, profile=prof)
        assert report.analyzed == 4

    def test_config_passthrough(self):
        program = compile_source(SRC)
        report = abcd(program, config=ABCDConfig(upper=False))
        assert report.analyzed_count("upper") == 0

    def test_optimized_program_verifies(self):
        from repro.ir.verifier import verify_program

        program = compile_source(SRC)
        abcd(program)
        verify_program(program)
