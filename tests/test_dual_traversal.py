"""Equivalence of the unified dual-direction traversal.

The shared session solves upper and lower queries in one traversal over
the dual inequality graph with a direction-tagged memo.  That sharing is
purely an engine optimization: every observable outcome — which checks
are eliminated, at what scope, via which mechanism, and the certificate
emitted for each — must be identical to two independent single-direction
runs (one fresh per-site prover per query, as the pre-unification
pipeline did).

The single-direction baseline is recovered by stripping ``dual`` from
every :class:`~repro.core.constraints.GraphBundle` the analysis builds,
which forces ``analyze_checks`` down its per-site fallback path over the
``upper``/``lower`` views.  The property is then checked over the whole
bench corpus (plain and certify mode) and 200 fuzzed programs.
"""

import contextlib
import json

import pytest

from repro.bench.corpus import CORPUS
from repro.certify.driver import certificates_to_json
from repro.core import abcd as abcd_module
from repro.core.abcd import ABCDConfig
from repro.fuzz.generator import GeneratorConfig, generate_source
from repro.pipeline import abcd, compile_source

CORPUS_NAMES = [p.name for p in CORPUS]

FUZZ_SEEDS = range(200)
_SEED_CHUNKS = [range(start, start + 25) for start in range(0, 200, 25)]


@contextlib.contextmanager
def _single_direction_sessions():
    """Force the per-site single-direction fallback in analyze_checks."""
    original = abcd_module.build_graphs

    def stripped(*args, **kwargs):
        bundle = original(*args, **kwargs)
        bundle.dual = None
        return bundle

    abcd_module.build_graphs = stripped
    try:
        yield
    finally:
        abcd_module.build_graphs = original


def _decisions(report):
    """Every observable per-check outcome of one run.

    ``result`` is compared as proven-ness, not as the exact lattice
    value: the shared memo may answer a later query with a
    cycle-tainted-but-proven entry (``REDUCED``) where a fresh per-site
    traversal never meets the cycle and reports ``TRUE``.  Both
    establish the bound, and nothing downstream of the solver
    distinguishes them (only ``ProofResult.proven`` is consulted).
    """
    return [
        (
            record.check_id,
            record.kind,
            record.function,
            record.block,
            record.result.proven,
            record.eliminated,
            record.scope,
            record.via_gvn,
            record.budget_exhausted,
            record.exhausted_budget,
            record.certificate,
            record.revoked,
        )
        for record in report.analyses
    ]


def _run(source: str, certify: bool = False):
    program = compile_source(source)
    config = ABCDConfig(certify=certify)
    report = abcd(program, config=config)
    return program, report


def _compare(source: str, certify: bool = False):
    _, unified = _run(source, certify=certify)
    with _single_direction_sessions():
        _, split = _run(source, certify=certify)
    assert _decisions(unified) == _decisions(split)
    if certify:
        unified_json = json.dumps(certificates_to_json(unified), indent=2)
        split_json = json.dumps(certificates_to_json(split), indent=2)
        assert unified_json == split_json


class TestCorpusEquivalence:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_decisions_identical(self, name):
        source = next(p for p in CORPUS if p.name == name).source()
        _compare(source)

    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_certificates_byte_identical(self, name):
        source = next(p for p in CORPUS if p.name == name).source()
        _compare(source, certify=True)


class TestFuzzEquivalence:
    @pytest.mark.parametrize("seeds", _SEED_CHUNKS, ids=lambda r: f"{r.start}-{r.stop - 1}")
    def test_decisions_identical(self, seeds):
        for seed in seeds:
            source = generate_source(seed, GeneratorConfig())
            _compare(source)
