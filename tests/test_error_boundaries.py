"""Error-boundary regression tests: every phase that walks recursive
structures or looks up caller-supplied names must surface failures as
members of the :class:`ReproError` hierarchy, never as raw ``KeyError``
or ``RecursionError``.  Each test targets exactly one wrapped site so a
regression pinpoints the phase that started leaking.
"""

import sys

import pytest

from repro.errors import (
    CallDepthExceeded,
    CompileError,
    MiniJRuntimeError,
    NestingLimitError,
    ReproError,
    SourceLocation,
    UnknownFunctionError,
)
from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.frontend.types import INT
from repro.ir.lowering import lower_program
from repro.pipeline import compile_source, run
from repro.runtime.codegen import compile_to_python

_LOC = SourceLocation(1, 1)


def _deep_expr_source(depth: int) -> str:
    """A single expression nested far beyond any sane program."""
    expr = "0"
    for _ in range(depth):
        expr = f"({expr} + 1)"
    return f"fn main(): int {{ return {expr}; }}"


def _deep_ast(depth: int) -> ast.ProgramAST:
    """The same shape built directly, bypassing the parser, so the
    semantic checker and lowering walk hit their own recursion budgets."""
    expr: ast.Expr = ast.IntLiteral(_LOC, 0)
    for _ in range(depth):
        expr = ast.BinaryOp(_LOC, "+", expr, ast.IntLiteral(_LOC, 1))
    fn = ast.FunctionDecl(
        name="main",
        params=[],
        return_type=INT,
        body=[ast.ReturnStmt(_LOC, expr)],
        location=_LOC,
    )
    return ast.ProgramAST([fn])


# A nesting depth that overruns CPython's default recursion limit in all
# of the phases under test, with margin for interpreter-stack variance.
DEEP = sys.getrecursionlimit() * 4


class TestNestingLimits:
    def test_parser_wraps_recursion_error(self):
        with pytest.raises(NestingLimitError) as info:
            parse_source(_deep_expr_source(DEEP))
        assert "recursion budget" in str(info.value)

    def test_semantic_checker_wraps_recursion_error(self):
        with pytest.raises(NestingLimitError):
            check_program(_deep_ast(DEEP))

    def test_lowering_wraps_recursion_error(self):
        program = _deep_ast(4000)
        limit = sys.getrecursionlimit()
        try:
            # Give the semantic checker room to accept the program, then
            # clamp the budget so the overrun happens in lowering.
            sys.setrecursionlimit(100_000)
            info = check_program(program)
            sys.setrecursionlimit(1500)
            with pytest.raises(NestingLimitError):
                lower_program(program, info)
        finally:
            sys.setrecursionlimit(limit)

    def test_nesting_limit_is_a_compile_error(self):
        assert issubclass(NestingLimitError, CompileError)
        assert issubclass(NestingLimitError, ReproError)


RECURSIVE_SRC = """
fn spin(n: int): int {
  return spin(n + 1);
}
fn main(): int {
  return spin(0);
}
"""


class TestRuntimeBoundaries:
    def test_interpreter_unknown_function(self):
        program = compile_source("fn main(): int { return 1; }")
        with pytest.raises(UnknownFunctionError) as info:
            run(program, "nope")
        assert "nope" in str(info.value)

    def test_interpreter_call_depth(self):
        program = compile_source(RECURSIVE_SRC)
        with pytest.raises(CallDepthExceeded):
            run(program, "main")

    def test_codegen_unknown_function(self):
        program = compile_source("fn main(): int { return 1; }")
        compiled = compile_to_python(program)
        with pytest.raises(UnknownFunctionError):
            compiled.run("nope")

    def test_codegen_call_depth(self):
        compiled = compile_to_python(compile_source(RECURSIVE_SRC))
        with pytest.raises(CallDepthExceeded):
            compiled.run("main")

    def test_runtime_boundaries_are_minij_runtime_errors(self):
        assert issubclass(UnknownFunctionError, MiniJRuntimeError)
        assert issubclass(CallDepthExceeded, MiniJRuntimeError)
        assert issubclass(MiniJRuntimeError, ReproError)
