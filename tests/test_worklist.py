"""The sparse worklist pass: convergence, equivalence, and sparseness.

Three contracts from the PR that introduced :mod:`repro.opt.worklist`:

1. **Single convergence** — one ``optimize_worklist`` call reaches
   quiescence (a second call makes zero changes), shown on the paper's
   bubble-sort running example and the whole corpus.
2. **Equivalence** — the fused pass computes exactly the fixpoint of the
   three legacy dense passes (copy-prop / const-fold / DCE), byte-identical
   formatted IR.
3. **Sparseness** — ``instructions_visited`` is at most half of what the
   dense fixpoint-group sweep pays on the same input.
"""

import pytest

import repro.opt as opt
from repro.bench.corpus import get, names
from repro.ir import format_function
from repro.pipeline import compile_source
from tests.test_paper_example import FIGURE1_SRC


def fresh(source: str):
    """Compile to e-SSA with the standard opts *not* yet applied."""
    return compile_source(source, standard_opts=False)


def legacy_to_quiescence(fn) -> int:
    """The dense baseline, iterated until it stops changing."""
    total = 0
    while True:
        changes = opt.run_standard_pipeline(fn)
        total += changes
        if changes == 0:
            return total


def dense_visits_to_quiescence(fn) -> int:
    """Instructions a dense sweep touches: each legacy pass reads every
    instruction of the function once per round (the FixpointGroup model),
    rounds repeating until a quiet one."""
    members = (
        opt.propagate_copies,
        opt.fold_constants,
        opt.eliminate_dead_code,
    )
    visited = 0
    while True:
        changes = 0
        for member in members:
            visited += sum(1 for _ in fn.all_instructions())
            changes += member(fn)
        if changes == 0:
            return visited


# ----------------------------------------------------------------------
# Convergence.
# ----------------------------------------------------------------------


class TestConvergence:
    def test_bubble_sort_single_convergence(self):
        program = fresh(FIGURE1_SRC)
        for fn in program.functions.values():
            result = opt.optimize_worklist(fn)
            assert result.converged_in_one_pass
            again = opt.optimize_worklist(fn)
            assert again.changes == 0, (
                f"{fn.name}: second worklist run still changed IR"
            )

    @pytest.mark.parametrize("name", names())
    def test_corpus_single_convergence(self, name):
        program = fresh(get(name).source())
        for fn in program.functions.values():
            opt.optimize_worklist(fn)
            assert opt.optimize_worklist(fn).changes == 0

    def test_requires_ssa(self):
        program = compile_source(
            FIGURE1_SRC, standard_opts=False, verify=False
        )
        fn = program.function("sort")
        fn.ssa_form = "none"
        with pytest.raises(ValueError):
            opt.optimize_worklist(fn)

    def test_quiescent_run_visits_each_instruction_once(self):
        program = fresh(FIGURE1_SRC)
        fn = program.function("sort")
        opt.optimize_worklist(fn)
        quiet = opt.optimize_worklist(fn)
        assert quiet.worklist_revisits == 0
        assert quiet.instructions_visited == fn.def_use().instruction_count()


# ----------------------------------------------------------------------
# Equivalence with the legacy dense pipeline.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", names())
def test_matches_legacy_fixpoint_on_corpus(name):
    dense = fresh(get(name).source())
    sparse = fresh(get(name).source())
    for fn_name in dense.functions:
        legacy_to_quiescence(dense.function(fn_name))
        opt.optimize_worklist(sparse.function(fn_name))
        assert format_function(dense.function(fn_name)) == format_function(
            sparse.function(fn_name)
        ), f"{name}.{fn_name}: worklist IR diverges from legacy fixpoint"


def test_matches_legacy_fixpoint_on_paper_example():
    dense = fresh(FIGURE1_SRC)
    sparse = fresh(FIGURE1_SRC)
    for fn_name in dense.functions:
        legacy_to_quiescence(dense.function(fn_name))
        opt.optimize_worklist(sparse.function(fn_name))
        assert format_function(dense.function(fn_name)) == format_function(
            sparse.function(fn_name)
        )


# ----------------------------------------------------------------------
# Sparseness.
# ----------------------------------------------------------------------


def test_visits_at_most_half_of_dense_sweep_across_corpus():
    sparse_total = 0
    dense_total = 0
    for name in names():
        dense = fresh(get(name).source())
        sparse = fresh(get(name).source())
        for fn_name in dense.functions:
            dense_total += dense_visits_to_quiescence(dense.function(fn_name))
            result = opt.optimize_worklist(sparse.function(fn_name))
            sparse_total += result.instructions_visited
    assert sparse_total * 2 <= dense_total, (
        f"worklist visited {sparse_total} instructions vs {dense_total} "
        "for the dense sweep — sparseness regressed below 2x"
    )


def test_session_stats_carry_worklist_counters():
    from repro.passes.session import CompilationSession

    session = CompilationSession(debug=True)
    compile_source(FIGURE1_SRC, inline=True, session=session)
    entry = session.stats.passes.get("standard-pipeline")
    assert entry is not None
    assert entry.instructions_visited > 0
    payload = session.stats.to_json()
    recorded = {p["name"]: p for p in payload["passes"]}
    assert recorded["standard-pipeline"]["instructions_visited"] > 0
    assert "worklist_revisits" in recorded["standard-pipeline"]
