"""Proof-witness certificate tests (``repro.certify``).

Covers the witness grammar's corner cases on hand-built inequality
graphs (harmless-cycle closures, φ meets, memo budget-subsumption
reuse), the independent checker's rejection conditions, the revocation
ladder (single revoke → quarantine → ``--strict`` escalation), PRE
assumption certificates, deterministic serialization across fresh
sessions, and corpus-wide zero-rejection certification.
"""

import json

import pytest

from repro.bench.corpus import CORPUS
from repro.certify import (
    CertificateRejected,
    certificates_to_json,
    certify_state,
    check_witness,
)
from repro.certify.witness import (
    AxiomWitness,
    CycleWitness,
    EdgeWitness,
    PhiWitness,
    is_closed,
    witness_to_json,
)
from repro.core import abcd as abcd_module
from repro.core.abcd import ABCDConfig, ABCDReport
from repro.core.graph import InequalityGraph, const_node, len_node, var_node
from repro.core.solver import DemandProver
from repro.errors import CertificateError
from repro.ir.instructions import CheckLower, CheckUpper
from repro.passes.session import CompilationSession
from repro.pipeline import abcd, compile_source, run
from repro.runtime.profiler import collect_profile

A = len_node("A")
I = var_node("i")
I0 = var_node("i0")
I2 = var_node("i2")


def _prove_with_witness(graph, source, target, budget):
    outcome = DemandProver(graph, witnesses=True).demand_prove(
        source, target, budget
    )
    return outcome


# ----------------------------------------------------------------------
# Hand-built graphs: grammar corner cases.
# ----------------------------------------------------------------------


class TestWitnessReplay:
    def test_chain_witness_replays(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("n"), 0)
        graph.add_edge(var_node("n"), I, -2)
        outcome = _prove_with_witness(graph, A, I, -1)
        assert outcome.result.proven
        assert is_closed(outcome.witness)
        check_witness(graph, A, I, -1, outcome.witness)

    def test_len_nonneg_axiom_replays(self):
        graph = InequalityGraph("upper")
        outcome = _prove_with_witness(graph, A, const_node(0), 0)
        assert outcome.result.proven
        assert isinstance(outcome.witness, AxiomWitness)
        assert outcome.witness.rule == "len-nonneg"
        check_witness(graph, A, const_node(0), 0, outcome.witness)

    def test_plain_session_emits_no_witness(self):
        graph = InequalityGraph()
        graph.add_edge(A, I, -1)
        outcome = DemandProver(graph).demand_prove(A, I, -1)
        assert outcome.result.proven
        assert outcome.witness is None

    def test_missing_witness_is_rejected(self):
        graph = InequalityGraph()
        graph.add_edge(A, I, -1)
        with pytest.raises(CertificateRejected, match="no witness"):
            check_witness(graph, A, I, -1, None)


def _reduced_loop_graph(step: int) -> InequalityGraph:
    """``i = φ(i0, i2)`` with ``i0 <= len(A) - 1`` and ``i2 <= i + step``
    (``step <= 0`` makes the loop-carried cycle harmless)."""
    graph = InequalityGraph("upper")
    graph.add_edge(A, I0, -1)
    graph.add_edge(I0, I, 0)
    graph.add_edge(I2, I, 0)
    graph.add_edge(I, I2, step)
    graph.mark_phi(I)
    return graph


class TestCycleWitnesses:
    def test_reduced_cycle_witness_replays(self):
        graph = _reduced_loop_graph(step=-1)
        outcome = _prove_with_witness(graph, A, I, -1)
        assert outcome.result.proven
        assert is_closed(outcome.witness)
        # The loop-carried branch must close as a harmless cycle on i.
        assert isinstance(outcome.witness, PhiWitness)
        subs = {source: sub for source, _, sub in outcome.witness.branches}
        assert isinstance(subs[I2], EdgeWitness)
        assert subs[I2].sub == CycleWitness(I)
        check_witness(graph, A, I, -1, outcome.witness)

    def test_amplifying_cycle_is_not_proven(self):
        outcome = _prove_with_witness(_reduced_loop_graph(step=1), A, I, -1)
        assert not outcome.result.proven
        assert outcome.witness is None

    def test_forged_cycle_on_amplifying_graph_rejected(self):
        # Hand-forge the witness the solver refused to emit: the checker's
        # own telescoping sees the +1 cycle weight and rejects it.
        graph = _reduced_loop_graph(step=1)
        forged = PhiWitness(
            I,
            (
                (I0, 0, EdgeWitness(I0, A, -1, AxiomWitness(A, "source"))),
                (I2, 0, EdgeWitness(I2, I, 1, CycleWitness(I))),
            ),
        )
        with pytest.raises(CertificateRejected, match="amplifying cycle"):
            check_witness(graph, A, I, -1, forged)

    def test_cycle_without_phi_rejected(self):
        # Section-4 consistency: a φ-free "harmless" cycle proves nothing.
        graph = InequalityGraph("upper")
        x, y = var_node("x"), var_node("y")
        graph.add_edge(y, x, 0)
        graph.add_edge(x, y, 0)
        forged = EdgeWitness(x, y, 0, EdgeWitness(y, x, 0, CycleWitness(x)))
        with pytest.raises(CertificateRejected, match="no φ vertex"):
            check_witness(graph, A, x, -1, forged)

    def test_cycle_at_root_rejected(self):
        graph = _reduced_loop_graph(step=-1)
        with pytest.raises(CertificateRejected, match="not active"):
            check_witness(graph, A, I, -1, CycleWitness(I))


class TestPhiWitnesses:
    def test_dropped_phi_branch_rejected(self):
        graph = _reduced_loop_graph(step=-1)
        witness = _prove_with_witness(graph, A, I, -1).witness
        pruned = PhiWitness(I, witness.branches[:1])
        with pytest.raises(CertificateRejected, match="not discharged"):
            check_witness(graph, A, I, -1, pruned)

    def test_invented_phi_branch_rejected(self):
        graph = _reduced_loop_graph(step=-1)
        witness = _prove_with_witness(graph, A, I, -1).witness
        stray = (var_node("ghost"), 0, AxiomWitness(var_node("ghost"), "source"))
        forged = PhiWitness(I, witness.branches + (stray,))
        with pytest.raises(CertificateRejected, match="no.*backing"):
            check_witness(graph, A, I, -1, forged)

    def test_tightened_edge_weight_rejected(self):
        graph = InequalityGraph()
        graph.add_edge(A, I, -1)
        witness = _prove_with_witness(graph, A, I, -1).witness
        assert isinstance(witness, EdgeWitness)
        tightened = EdgeWitness(I, A, -2, witness.sub)
        with pytest.raises(CertificateRejected, match="no graph edge"):
            check_witness(graph, A, I, -2, tightened)


class TestMemoSubsumption:
    def test_memo_reuse_yields_replayable_witness(self):
        # Two φ branches funnel through one shared vertex; the second
        # branch hits the memo at a *larger* telescoped budget and must
        # reuse the closed witness recorded at the smaller bound.
        graph = InequalityGraph("upper")
        m, p, q, s = (var_node(n) for n in ("m", "p", "q", "s"))
        graph.add_edge(p, m, 0)
        graph.add_edge(q, m, 0)
        graph.mark_phi(m)
        graph.add_edge(s, p, 0)
        graph.add_edge(s, q, -1)
        graph.add_edge(A, s, -2)
        outcome = _prove_with_witness(graph, A, m, -1)
        assert outcome.result.proven
        subs = {source: sub for source, _, sub in outcome.witness.branches}
        # Same witness *object*: the memo hit reused it, it was not
        # re-derived.
        assert subs[p].sub is subs[q].sub
        assert is_closed(outcome.witness)
        check_witness(graph, A, m, -1, outcome.witness)


class TestSharedSubtreeReplay:
    """The checker's replay cache: memo-shared sub-witnesses (the witness
    is a DAG) must verify once per budget class, not once per tree path —
    and the cache must never launder a subtree into a context where it
    does not hold."""

    def test_phi_ladder_replays_in_linear_time(self):
        # 60 φ rungs whose branches share their tail sub-witness: a
        # tree-shaped replay would take 2^60 steps; completing at all
        # proves the shared subtrees are cached.
        graph = InequalityGraph("upper")
        rungs = 60
        x = [var_node(f"x{k}") for k in range(rungs + 1)]
        graph.add_edge(A, x[0], -1)
        for k in range(rungs):
            left, right = var_node(f"l{k}"), var_node(f"r{k}")
            graph.add_edge(x[k], left, 0)
            graph.add_edge(x[k], right, 0)
            graph.add_edge(left, x[k + 1], 0)
            graph.add_edge(right, x[k + 1], 0)
            graph.mark_phi(x[k + 1])
        outcome = _prove_with_witness(graph, A, x[rungs], -1)
        assert outcome.result.proven
        check_witness(graph, A, x[rungs], -1, outcome.witness)

    def test_shared_subtree_not_reused_at_smaller_budget(self):
        # A φ references the same sub-witness twice, first at a budget
        # where it holds, then — through a heavier in-edge — at one where
        # it does not: the cached success must not blanket the second
        # obligation.
        graph = InequalityGraph("upper")
        x, y = var_node("x"), var_node("y")
        graph.add_edge(A, x, -1)
        graph.add_edge(x, y, 0)
        graph.add_edge(x, y, 5)
        graph.mark_phi(y)
        sub = EdgeWitness(x, A, -1, AxiomWitness(A, "source"))
        forged = PhiWitness(y, ((x, 0, sub), (x, 5, sub)))
        with pytest.raises(CertificateRejected, match="source axiom"):
            check_witness(graph, A, y, -1, forged)

    def test_cycle_escaping_subtree_not_cached(self):
        # Branch 1 verifies a subtree whose cycle leaf closes on the φ
        # *above* it; branch 2 presents the same subtree outside that
        # φ's scope, where the cycle target is no longer active.  The
        # cache must not carry the first success across.
        graph = InequalityGraph("upper")
        q, y, r = var_node("q"), var_node("y"), var_node("r")
        graph.add_edge(y, q, 0)
        graph.add_edge(q, y, 0)
        graph.mark_phi(y)
        graph.add_edge(y, r, 0)
        graph.add_edge(q, r, 0)
        graph.mark_phi(r)
        escaping = EdgeWitness(q, y, 0, CycleWitness(y))
        inner = PhiWitness(y, ((q, 0, escaping),))
        forged = PhiWitness(r, ((y, 0, inner), (q, 0, escaping)))
        with pytest.raises(CertificateRejected, match="not active"):
            check_witness(graph, A, r, 0, forged)


# ----------------------------------------------------------------------
# The revocation ladder (driver-level, against real analysis state).
# ----------------------------------------------------------------------

LOOP_SRC = """
fn main(): int {
  let a: int[] = new int[20];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""


def _analyzed_state(config):
    program = compile_source(LOOP_SRC)
    fn = program.functions["main"]
    state = abcd_module.analyze_checks(fn, program, config)
    records = {a.check_id: a for a in state.analyses}
    return program, fn, state, records


class TestRevocationLadder:
    def test_clean_state_certifies_fully(self):
        config = ABCDConfig(certify=True)
        _, fn, state, _ = _analyzed_state(config)
        assert len(state.to_remove) == 2
        verdicts = certify_state(fn, state, config)
        assert [v.status for v in verdicts] == ["accepted", "accepted"]
        assert len(state.to_remove) == 2

    def test_single_rejection_revokes_exactly_that_check(self):
        config = ABCDConfig(certify=True, certify_quarantine=99)
        _, fn, state, records = _analyzed_state(config)
        victim = state.to_remove[0]
        record = records[victim.instr.check_id]
        record.witness = CycleWitness(victim.target)  # forged
        report = ABCDReport()
        verdicts = certify_state(fn, state, config, report)
        assert sorted(v.status for v in verdicts) == ["accepted", "rejected"]
        assert record.revoked and not record.eliminated
        assert victim not in state.to_remove
        assert len(state.to_remove) == 1
        assert report.quarantined_functions == []

    def test_repeated_rejections_quarantine_the_function(self):
        config = ABCDConfig(certify=True, certify_quarantine=2)
        _, fn, state, records = _analyzed_state(config)
        for site in state.to_remove:
            records[site.instr.check_id].witness = None
        report = ABCDReport()
        certify_state(fn, state, config, report)
        assert state.to_remove == []
        assert report.quarantined_functions == ["main"]
        assert all(r.revoked for r in records.values() if r.certificate)

    def test_strict_mode_escalates_to_error(self):
        config = ABCDConfig(certify=True, strict=True)
        _, fn, state, records = _analyzed_state(config)
        records[state.to_remove[0].instr.check_id].witness = None
        with pytest.raises(CertificateError, match="certificate rejected"):
            certify_state(fn, state, config)

    def test_revoked_check_stays_in_the_program(self):
        # End-to-end through the pass pipeline: corrupt one witness, run
        # certify mode, and verify the revoked check still executes.
        from repro.core.solver import DemandProver as Prover

        real = Prover.demand_prove
        state = {"first": True}

        def corrupt_first(self, source, target, budget):
            outcome = real(self, source, target, budget)
            if outcome.witness is not None and state["first"]:
                state["first"] = False
                outcome.witness = CycleWitness(target)
            return outcome

        program = compile_source(LOOP_SRC)
        Prover.demand_prove = corrupt_first
        try:
            report = abcd(
                program, config=ABCDConfig(certify=True, certify_quarantine=99)
            )
        finally:
            Prover.demand_prove = real
        assert report.certificates_rejected == 1
        assert report.revoked_count == 1
        survivors = [
            instr
            for fn in program.functions.values()
            for instr in fn.all_instructions()
            if isinstance(instr, (CheckLower, CheckUpper))
        ]
        assert len(survivors) == 1
        baseline = run(compile_source(LOOP_SRC), "main").value
        assert run(program, "main").value == baseline


# ----------------------------------------------------------------------
# PRE assumption certificates.
# ----------------------------------------------------------------------

PRE_SRC = """
fn kernel(a: int[], k: int, n: int): int {
  let s: int = 0;
  let r: int = 0;
  while (r < n) {
    s = s + a[k];
    r = r + 1;
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[8];
  return kernel(a, 3, 40);
}
"""


class TestPreCertificates:
    def test_pre_transformation_certifies(self):
        program = compile_source(PRE_SRC)
        profile = collect_profile(program, "main")
        report = abcd(
            program,
            config=ABCDConfig(certify=True, pre=True),
            pre=True,
            profile=profile,
        )
        pre_records = [a for a in report.analyses if a.pre_applied]
        assert pre_records, "scenario no longer triggers PRE"
        assert all(r.certificate == "accepted" for r in pre_records)
        assert report.certificates_rejected == 0
        baseline = run(compile_source(PRE_SRC), "main").value
        assert run(program, "main").value == baseline


# ----------------------------------------------------------------------
# Determinism and corpus-wide certification.
# ----------------------------------------------------------------------


def _certified_json(source: str) -> str:
    session = CompilationSession(config=ABCDConfig(certify=True))
    program = session.compile(source)
    report = session.optimize(program)
    return json.dumps(certificates_to_json(report), sort_keys=True)


class TestDeterminism:
    def test_two_fresh_sessions_serialize_identically(self):
        source = CORPUS[0].source()
        assert _certified_json(source) == _certified_json(source)

    def test_witness_json_is_plain_data(self):
        graph = _reduced_loop_graph(step=-1)
        payload = witness_to_json(_prove_with_witness(graph, A, I, -1).witness)
        assert payload["node"] == "phi"
        json.dumps(payload)  # must be JSON-serializable as-is


@pytest.mark.parametrize("bench", CORPUS, ids=lambda b: b.name)
def test_corpus_certifies_without_rejection(bench):
    session = CompilationSession(config=ABCDConfig(certify=True))
    program = session.compile(bench.source())
    report = session.optimize(program)
    assert report.certificates_rejected == 0
    assert report.revoked_count == 0
    assert report.quarantined_functions == []
    # Every elimination carried a certificate and every one was accepted.
    assert report.certificates_accepted == report.eliminated_count()
