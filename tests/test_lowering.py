"""AST-to-IR lowering tests."""

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Branch,
    CheckLower,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Jump,
    Return,
    Var,
)
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_program


def lower(source: str):
    ast = parse_source(source)
    info = check_program(ast)
    program = lower_program(ast, info)
    verify_program(program)
    return program


def lower_fn(body: str, header: str = "fn f(): void"):
    return lower(f"{header} {{ {body} }}").function("f")


def instrs_of(fn, cls):
    return [i for i in fn.all_instructions() if isinstance(i, cls)]


class TestChecksEmitted:
    def test_load_emits_both_checks_before_access(self):
        fn = lower_fn("let v: int = a[i];", "fn f(a: int[], i: int): void")
        body = fn.entry_block().body
        kinds = [type(i).__name__ for i in body]
        load_at = kinds.index("ArrayLoad")
        assert "CheckLower" in kinds[:load_at]
        assert "CheckUpper" in kinds[:load_at]

    def test_store_emits_both_checks(self):
        fn = lower_fn("a[i] = 1;", "fn f(a: int[], i: int): void")
        assert len(instrs_of(fn, CheckLower)) == 1
        assert len(instrs_of(fn, CheckUpper)) == 1
        assert len(instrs_of(fn, ArrayStore)) == 1

    def test_check_ids_are_unique_across_functions(self):
        program = lower(
            "fn f(a: int[]): void { a[0] = 1; } fn g(a: int[]): void { a[1] = 2; }"
        )
        ids = [c.check_id for c in program.all_checks()]
        assert len(ids) == len(set(ids))

    def test_constant_index_materialized_to_variable(self):
        fn = lower_fn("let v: int = a[3];", "fn f(a: int[]): void")
        check = instrs_of(fn, CheckUpper)[0]
        assert isinstance(check.index, Var)

    def test_upper_check_references_array_variable(self):
        fn = lower_fn("let v: int = a[0];", "fn f(a: int[]): void")
        check = instrs_of(fn, CheckUpper)[0]
        assert check.array == "a"

    def test_nested_index_checks_inner_first(self):
        fn = lower_fn("let v: int = a[a[0]];", "fn f(a: int[]): void")
        uppers = instrs_of(fn, CheckUpper)
        loads = instrs_of(fn, ArrayLoad)
        assert len(uppers) == 2 and len(loads) == 2


class TestControlFlow:
    def test_if_creates_branch_and_join(self):
        fn = lower_fn("let x: int = 0; if (x < 1) { x = 1; }")
        branches = instrs_of(fn, Branch)
        assert len(branches) == 1

    def test_comparison_feeds_branch_directly(self):
        fn = lower_fn("let x: int = 0; if (x < 1) { x = 1; }")
        for label in fn.reachable_blocks():
            block = fn.blocks[label]
            if isinstance(block.terminator, Branch):
                cond = block.terminator.cond
                assert isinstance(cond, Var)
                cmp = next(
                    i for i in block.body if i.defs() == cond.name
                )
                assert isinstance(cmp, Cmp)
                return
        pytest.fail("no branch found")

    def test_while_loop_shape(self):
        fn = lower_fn("let i: int = 0; while (i < 5) { i = i + 1; }")
        # header must be reachable from the body (a back edge exists).
        preds = fn.predecessors()
        has_back_edge = any(len(p) > 1 for p in preds.values())
        assert has_back_edge

    def test_for_desugars_continue_to_step(self):
        result_src = """
fn main(): int {
  let total: int = 0;
  for (let i: int = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    total = total + i;
  }
  return total;
}
"""
        from repro.runtime.interpreter import run_program

        program = lower(result_src)
        assert run_program(program, "main").value == 25

    def test_break_exits_loop(self):
        src = """
fn main(): int {
  let i: int = 0;
  while (true) {
    if (i >= 7) { break; }
    i = i + 1;
  }
  return i;
}
"""
        from repro.runtime.interpreter import run_program

        assert run_program(lower(src), "main").value == 7

    def test_unreachable_code_after_return_dropped(self):
        fn = lower_fn("return; let x: int = 1;", "fn f(): void")
        copies = instrs_of(fn, Copy)
        assert all(
            not (isinstance(c.src, Const) and c.src.value == 1) for c in copies
        )

    def test_void_function_gets_implicit_return(self):
        fn = lower_fn("let x: int = 1;")
        returns = instrs_of(fn, Return)
        assert len(returns) == 1 and returns[0].value is None


class TestShortCircuit:
    def test_and_skips_rhs(self):
        src = """
fn main(): int {
  let a: int[] = new int[4];
  let i: int = 9;
  if (i < len(a) && a[i] == 0) {
    return 1;
  }
  return 0;
}
"""
        from repro.runtime.interpreter import run_program

        # Without short-circuit, a[9] would raise.
        assert run_program(lower(src), "main").value == 0

    def test_or_skips_rhs(self):
        src = """
fn main(): int {
  let a: int[] = new int[4];
  let i: int = 9;
  if (i >= len(a) || a[i] == 0) {
    return 1;
  }
  return 0;
}
"""
        from repro.runtime.interpreter import run_program

        assert run_program(lower(src), "main").value == 1

    def test_boolean_value_position(self):
        src = """
fn main(): int {
  let x: int = 3;
  let b: bool = x > 1 && x < 10;
  if (b) { return 1; }
  return 0;
}
"""
        from repro.runtime.interpreter import run_program

        assert run_program(lower(src), "main").value == 1


class TestNegationFolding:
    def test_unary_minus_of_literal_folds(self):
        fn = lower_fn("let x: int = -5;")
        copies = instrs_of(fn, Copy)
        assert any(
            isinstance(c.src, Const) and c.src.value == -5 for c in copies
        )

    def test_not_in_condition_swaps_targets(self):
        src = """
fn main(): int {
  let x: int = 1;
  if (!(x < 5)) { return 0; }
  return 1;
}
"""
        from repro.runtime.interpreter import run_program

        assert run_program(lower(src), "main").value == 1
