"""Value-range analysis baseline tests."""

import pytest

from repro.baselines.range_analysis import (
    Interval,
    RangeAnalysis,
    eliminate_program_with_ranges,
    eliminate_with_ranges,
)
from repro.pipeline import clone_program, compile_source, run


def compiled(source: str):
    # The baseline is tested on unoptimized e-SSA: constant propagation
    # would pre-solve the very facts the interval analysis must discover.
    return compile_source(source, standard_opts=False)


class TestInterval:
    def test_exact_and_top(self):
        assert Interval.exact(5) == Interval(5, 5)
        top = Interval.top()
        assert top.lo == float("-inf") and top.hi == float("inf")

    def test_join(self):
        assert Interval(0, 3).join(Interval(2, 7)) == Interval(0, 7)

    def test_widen_unstable_bounds(self):
        widened = Interval(0, 5).widen(Interval(0, 9))
        assert widened == Interval(0, float("inf"))
        widened = Interval(0, 5).widen(Interval(-2, 5))
        assert widened == Interval(float("-inf"), 5)

    def test_widen_stable_is_identity(self):
        assert Interval(0, 5).widen(Interval(1, 4)) == Interval(0, 5)

    def test_arithmetic(self):
        assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
        assert Interval(1, 2).sub(Interval(10, 20)) == Interval(-19, -8)
        assert Interval(0, 9).shift(3) == Interval(3, 12)

    def test_clamps(self):
        assert Interval(-5, 10).clamp_lo(0) == Interval(0, 10)
        assert Interval(-5, 10).clamp_hi(3) == Interval(-5, 3)


class TestAnalysis:
    def test_constant_tracked(self):
        program = compiled("fn f(): int { let x: int = 7; return x; }")
        analysis = RangeAnalysis(program.function("f"))
        analysis.run()
        sevens = [r for r in analysis.ranges.values() if r == Interval(7, 7)]
        assert sevens

    def test_loop_counter_widened_but_lower_bound_kept(self):
        src = """
fn f(): int {
  let s: int = 0;
  for (let i: int = 0; i < 100; i = i + 1) {
    s = s + i;
  }
  return s;
}
"""
        program = compiled(src)
        fn = program.function("f")
        analysis = RangeAnalysis(fn)
        analysis.run()
        # The φ for i must keep a finite lower bound of 0.
        from repro.ir.instructions import Phi
        from repro.ssa.construct import base_name

        phi_dests = [
            i.dest
            for i in fn.all_instructions()
            if isinstance(i, Phi) and base_name(i.dest).startswith("i")
        ]
        assert phi_dests
        for dest in phi_dests:
            assert analysis.ranges[dest].lo >= 0

    def test_constant_array_length_tracked(self):
        src = "fn f(): int { let a: int[] = new int[9]; return len(a); }"
        program = compiled(src)
        fn = program.function("f")
        analysis = RangeAnalysis(fn)
        analysis.run()
        assert Interval(9, 9) in analysis.length_ranges.values()


class TestElimination:
    def test_lower_checks_eliminated_in_counting_loop(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
        program = compiled(src)
        report = eliminate_program_with_ranges(program)
        assert report.eliminated_lower == report.analyzed_lower

    def test_constant_sized_array_upper_eliminated(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let s: int = 0;
  for (let i: int = 0; i < 10; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
        program = compiled(src)
        report = eliminate_program_with_ranges(program)
        assert report.eliminated_upper == report.analyzed_upper

    def test_symbolic_length_upper_not_eliminated(self):
        # i < len(a) gives i <= hi(len)-1 = +inf-1: numeric ranges cannot
        # relate the index to a *symbolic* length — ABCD's advantage.
        src = """
fn f(n: int): int {
  let a: int[] = new int[n];
  let s: int = 0;
  let i: int = 0;
  while (i < len(a)) {
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
fn main(): int { return f(10); }
"""
        program = compiled(src)
        report = eliminate_with_ranges(program.function("f"))
        assert report.eliminated_lower == report.analyzed_lower
        assert report.eliminated_upper == 0

    def test_parameter_array_upper_not_eliminated(self):
        src = """
fn f(a: int[]): int {
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[4];
  return f(a);
}
"""
        program = compiled(src)
        report = eliminate_with_ranges(program.function("f"))
        assert report.eliminated_upper == 0
        assert report.eliminated_lower == report.analyzed_lower

    def test_behaviour_preserved(self):
        src = """
fn main(): int {
  let a: int[] = new int[16];
  let s: int = 0;
  for (let i: int = 0; i < 16; i = i + 1) {
    a[i] = i * i;
    s = s + a[i];
  }
  return s;
}
"""
        program = compiled(src)
        base = clone_program(program)
        eliminate_program_with_ranges(program)
        assert run(program, "main").value == run(base, "main").value

    def test_soundness_never_removes_failing_check(self):
        src = """
fn main(): int {
  let a: int[] = new int[4];
  let i: int = 5;
  return a[i];
}
"""
        from repro.errors import BoundsCheckError

        program = compiled(src)
        eliminate_program_with_ranges(program)
        with pytest.raises(BoundsCheckError):
            run(program, "main")

    def test_report_merge(self):
        src = """
fn f(a: int[]): int { return a[0]; }
fn main(): int {
  let a: int[] = new int[4];
  return f(a) + a[1];
}
"""
        program = compiled(src)
        report = eliminate_program_with_ranges(program)
        assert report.analyzed == report.analyzed_lower + report.analyzed_upper
        assert report.analyzed_upper == 2
