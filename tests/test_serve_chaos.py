"""Tests for the chaos storm harness (``repro storm``).

The CI chaos-smoke job runs the full 200-request storm; these tests keep
the harness itself honest at a smaller scale — a seeded storm under a
20% fault rate must pass its own verdict, the request plan must be
deterministic, and the verifier must actually catch the violations it
claims to (lost requests, wrong answers, fatal faults answered as
optimized service).
"""

from __future__ import annotations

import os

import pytest

from repro.robustness.faults import CHAOS_FAULTS, FATAL_CHAOS_FAULTS
from repro.serve.chaos import (
    StormResult,
    _plan_requests,
    _verify_response,
    format_storm,
    run_storm,
    storm_config,
)

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="the compile service requires POSIX pipes/signals"
)


def test_plan_is_deterministic():
    plan_a = _plan_requests(60, 0.2, seed=7, breaker_block=True)
    plan_b = _plan_requests(60, 0.2, seed=7, breaker_block=True)
    assert plan_a == plan_b
    plan_c = _plan_requests(60, 0.2, seed=8, breaker_block=True)
    assert plan_a != plan_c


def test_plan_opens_with_breaker_block():
    plan = _plan_requests(20, 0.0, seed=0, breaker_block=True)
    assert [request.get("chaos") for request in plan[:3]] == ["worker-crash"] * 3
    # Followed by clean requests on the same fingerprint.
    assert plan[3]["source"] == plan[0]["source"]
    assert "chaos" not in plan[3]
    assert len(plan) == 20


def test_plan_faults_are_registered_names():
    plan = _plan_requests(200, 0.5, seed=3, breaker_block=False)
    faulted = [request["chaos"] for request in plan if "chaos" in request]
    assert faulted, "a 50% fault rate must inject some faults"
    assert set(faulted) <= set(CHAOS_FAULTS)


def test_small_storm_passes():
    """The acceptance property at test scale: a seeded storm with fault
    injection completes with zero lost requests, zero incorrect
    responses, and a live supervisor."""
    result = run_storm(
        requests=30, fault_rate=0.2, seed=0, workers=2, deadline=2.0
    )
    assert result.passed, format_storm(result)
    assert result.lost == 0
    assert result.responses == 30
    assert result.supervisor_alive
    assert result.injected_faults, "the storm must actually inject faults"
    # The breaker block opened a breaker and clean requests on that
    # fingerprint were served degraded through it, checks intact.
    assert result.breaker_open_served >= 1
    assert result.counters.get("serve.breaker-opened", 0) >= 1
    assert result.optimized > 0 and result.degraded > 0


def test_storm_json_payload_is_complete():
    result = run_storm(
        requests=12, fault_rate=0.0, seed=1, workers=1, deadline=3.0
    )
    payload = result.to_json()
    assert payload["passed"] is True
    assert payload["lost"] == 0
    assert payload["requests"] == 12
    assert payload["responses"] == 12
    assert "serve.requests" in payload["counters"]
    assert isinstance(payload["violations"], list)


def test_storm_config_keeps_breakers_observably_open():
    config = storm_config()
    assert config.breaker_cooldown > 60.0
    assert config.chaos is not None  # explicit per-request faults enabled


class TestVerifier:
    """The storm verifier must catch each violation class it reports."""

    def fresh_result(self) -> StormResult:
        return StormResult(requests=1, seed=0, fault_rate=0.0)

    def test_flags_wrong_value(self):
        result = self.fresh_result()
        request = {"source": "fn main(): int { return 1; }", "expect": "ok"}
        response = {"status": "ok", "mode": "optimized", "value": 999,
                    "trap": None, "kind": None, "index": None,
                    "length": None, "check_id": None}
        _verify_response(result, 0, request, response, {})
        assert result.violations and "diverges" in result.violations[0]

    def test_flags_fatal_fault_answered_optimized(self):
        result = self.fresh_result()
        request = {
            "source": "fn main(): int { return 1; }",
            "expect": "ok",
            "chaos": FATAL_CHAOS_FAULTS[0],
        }
        response = {"status": "ok", "mode": "optimized", "value": 1,
                    "trap": None, "kind": None, "index": None,
                    "length": None, "check_id": None}
        _verify_response(result, 0, request, response, {})
        assert any("fatal fault" in violation for violation in result.violations)

    def test_flags_missing_user_error(self):
        result = self.fresh_result()
        request = {"source": "irrelevant", "expect": "error"}
        response = {"status": "ok", "mode": "optimized"}
        _verify_response(result, 0, request, response, {})
        assert result.violations

    def test_accepts_degraded_with_checks_intact(self):
        result = self.fresh_result()
        source = "fn main(): int { return 1; }"
        request = {"source": source, "expect": "ok"}
        cache = {}
        from repro.serve.chaos import _baseline

        expected = _baseline(source, cache)
        response = dict(expected)
        response["mode"] = "degraded"
        response["degraded_reason"] = "breaker-open"
        _verify_response(result, 0, request, response, cache)
        assert not result.violations
        assert result.degraded == 1
        assert result.breaker_open_served == 1

    def test_flags_degraded_that_lost_checks(self):
        result = self.fresh_result()
        source = "fn main(): int { let a: int[] = new int[3]; return a[1]; }"
        request = {"source": source, "expect": "ok"}
        cache = {}
        from repro.serve.chaos import _baseline

        expected = _baseline(source, cache)
        response = dict(expected)
        response["mode"] = "degraded"
        response["checks"] = {"total": 0, "lower": 0, "upper": 0, "speculative": 0}
        _verify_response(result, 0, request, response, cache)
        assert any("lost checks" in violation for violation in result.violations)

    def test_lost_requests_fail_the_storm(self):
        result = StormResult(requests=10, seed=0, fault_rate=0.0)
        result.responses = 9
        assert result.lost == 1
        assert not result.passed


# ----------------------------------------------------------------------
# The corruption storm: disk faults against the persistent store.
# ----------------------------------------------------------------------


class TestCorruptionStorm:
    def test_small_corruption_storm_passes(self, tmp_path):
        from repro.serve.chaos import format_corruption_storm, run_corruption_storm

        result = run_corruption_storm(
            requests=20,
            disk_fault_rate=0.3,
            kill_rate=0.1,
            seed=7,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
            byte_identity_samples=2,
        )
        assert result.passed, format_corruption_storm(result)
        assert result.lost == 0
        assert sum(result.injected_disk_faults.values()) > 0
        assert result.verify_rejections == 0
        assert result.invariant_violations == 0
        # The mid-storm restart recovered the planted torn tmp file.
        assert result.supervisor_restarts == 1
        assert result.recovered_tmp >= 1
        # Warm phase replays the same pool against the surviving store.
        assert result.warm_hit_rate >= result.min_warm_hit_rate
        assert result.byte_identical_checked == 2

    def test_corruption_storm_json_payload_is_complete(self, tmp_path):
        import json

        from repro.serve.chaos import run_corruption_storm

        result = run_corruption_storm(
            requests=8,
            disk_fault_rate=0.0,
            kill_rate=0.0,
            seed=3,
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            byte_identity_samples=0,
        )
        payload = json.loads(json.dumps(result.to_json()))
        for key in (
            "passed",
            "requests",
            "responses",
            "warm_hit_rate",
            "verify_rejections",
            "invariant_violations",
            "counters",
        ):
            assert key in payload
        assert payload["passed"] is True


# ----------------------------------------------------------------------
# Virtual-clock latency reporting and the shed contract.
# ----------------------------------------------------------------------


class TestLatencyDeterminism:
    def test_storm_latency_summary_is_byte_reproducible(self):
        """The satellite bugfix: latency percentiles come off the virtual
        clock, so two identical storms produce identical JSON — the
        property the CI overload-smoke gate stands on."""
        kwargs = dict(requests=12, fault_rate=0.25, seed=5, workers=1,
                      deadline=2.0)
        first = run_storm(**kwargs).to_json()
        second = run_storm(**kwargs).to_json()
        assert first["latency"] == second["latency"]
        assert first["latency"]["count"] == 12
        assert first["latency"]["p99"] >= first["latency"]["p50"] > 0.0
        import json

        assert json.dumps(first["latency"], sort_keys=True) == json.dumps(
            second["latency"], sort_keys=True
        )

    def test_timeout_costs_the_deadline_in_virtual_time(self):
        """A hang fault must show up in the virtual latency accounting as
        a deadline's worth of service time, not wall noise."""
        clean = run_storm(requests=3, fault_rate=0.0, seed=2, workers=1,
                          deadline=2.0, breaker_block=False)
        assert clean.passed
        assert max(clean.latencies) < 2.0


class TestShedContract:
    def make_result(self) -> StormResult:
        return StormResult(requests=1, seed=0, fault_rate=0.0)

    def test_shed_is_counted_never_lost_or_violated(self):
        result = self.make_result()
        request = {"source": "fn main(): int { return 1; }", "expect": "ok"}
        response = {"id": "r1", "status": "shed", "reason": "queue-full",
                    "retry_after": 0.5, "degrade_level": 3}
        _verify_response(result, 0, request, response, {})
        assert result.shed == 1
        assert not result.violations

    def test_shed_of_a_user_error_request_is_still_acceptable(self):
        # Backpressure outranks the would-be answer class: a shed is a
        # legitimate response even where a user error was expected.
        result = self.make_result()
        request = {"source": "irrelevant", "expect": "error"}
        response = {"id": "r1", "status": "shed", "reason": "deadline-expired",
                    "retry_after": 0.25, "degrade_level": 1}
        _verify_response(result, 0, request, response, {})
        assert result.shed == 1
        assert not result.violations

    def test_malformed_shed_is_flagged(self):
        result = self.make_result()
        request = {"source": "x", "expect": "ok"}
        response = {"id": "r1", "status": "shed", "reason": "because"}
        _verify_response(result, 0, request, response, {})
        assert any("unknown reason" in v for v in result.violations)
        assert any("retry_after" in v for v in result.violations)


# ----------------------------------------------------------------------
# The burst storm: overload control end to end at test scale.
# ----------------------------------------------------------------------


class TestBurstStorm:
    def test_small_burst_storm_holds_the_overload_contract(self):
        from repro.serve.chaos import format_burst_storm, run_burst_storm

        result = run_burst_storm(
            requests=80, burst_multiple=4.0, fault_rate=0.05, seed=0,
            workers=2, deadline=2.0, min_p99_improvement=2.0,
        )
        assert result.passed, format_burst_storm(result)
        assert result.lost == 0
        assert result.baseline_lost == 0
        assert result.responses == 80
        assert result.shed > 0
        assert result.max_level >= 2
        assert result.final_level == 0
        assert result.queue_depth_peak <= result.queue_capacity
        assert result.p99_improvement >= 2.0
        # Deadline-carrying requests existed and some were expired while
        # queued (shed without touching a worker).
        assert result.deadline_attached > 0
        assert result.shed_deadline > 0
        assert result.counters.get("serve.overload.deadline-shed", 0) > 0

    def test_burst_storm_json_is_reproducible(self):
        from repro.serve.chaos import run_burst_storm

        kwargs = dict(requests=40, burst_multiple=4.0, fault_rate=0.1,
                      seed=3, workers=1, deadline=2.0,
                      min_p99_improvement=1.0)
        import json

        first = json.dumps(run_burst_storm(**kwargs).to_json(),
                           sort_keys=True)
        second = json.dumps(run_burst_storm(**kwargs).to_json(),
                            sort_keys=True)
        assert first == second

    def test_burst_plan_is_seeded_and_open_loop(self):
        from repro.serve.chaos import _plan_burst

        plan_a = _plan_burst(50, 0.1, seed=4, mean_interarrival=0.0125)
        plan_b = _plan_burst(50, 0.1, seed=4, mean_interarrival=0.0125)
        assert plan_a == plan_b
        dues = [item["due"] for item in plan_a]
        assert dues == sorted(dues)
        assert len({item["frame"]["id"] for item in plan_a}) == 50
        # Open loop: arrival times are fixed up front, independent of
        # any service behavior.
        assert all("source" in item["frame"] for item in plan_a)
