"""Tests for the consolidated resource-limit helpers in ``repro.limits``.

``hard_deadline`` is the one SIGALRM implementation shared by the fuzz
oracle and the benchmark timeout fixture; these tests pin the contract
both sites rely on: the body is interrupted with the caller's exception,
the previous handler/timer always come back, and the guard degrades to a
no-op anywhere SIGALRM cannot work.
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.limits import HardDeadlineExceeded, hard_deadline, recursion_headroom


posix_only = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="requires SIGALRM"
)


@posix_only
def test_hard_deadline_fires_default_error():
    with pytest.raises(HardDeadlineExceeded):
        with hard_deadline(0.05):
            time.sleep(5)


@posix_only
def test_hard_deadline_fires_custom_error():
    class Custom(Exception):
        pass

    with pytest.raises(Custom, match="boom"):
        with hard_deadline(0.05, lambda: Custom("boom")):
            time.sleep(5)


@posix_only
def test_hard_deadline_error_escapes_blanket_exception_handlers():
    """The deadline error must not be containable as ``Exception``.

    The pass guard rolls back any pass that raises ``Exception``; if the
    deadline error were one, an alarm firing mid-pass would be recorded
    as a pass rollback and the (one-shot) timer would be spent — the
    rest of the request would run with no wall-clock bound at all."""
    with pytest.raises(HardDeadlineExceeded):
        try:
            with hard_deadline(0.05):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pass
        except Exception:  # the containment layers' blanket clause
            pytest.fail("HardDeadlineExceeded was swallowed as Exception")


@posix_only
def test_hard_deadline_noop_when_fast_enough():
    with hard_deadline(5.0):
        value = sum(range(10))
    assert value == 45


def test_hard_deadline_none_is_noop():
    with hard_deadline(None):
        pass
    with hard_deadline(0):
        pass
    with hard_deadline(-1.0):
        pass


@posix_only
def test_hard_deadline_restores_previous_handler_and_timer():
    previous_handler = signal.getsignal(signal.SIGALRM)
    with hard_deadline(30.0):
        assert signal.getsignal(signal.SIGALRM) is not previous_handler
    assert signal.getsignal(signal.SIGALRM) is previous_handler
    # No timer left armed.
    remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0)
    assert remaining == 0


@posix_only
def test_hard_deadline_restores_after_body_raises():
    previous_handler = signal.getsignal(signal.SIGALRM)
    with pytest.raises(ValueError):
        with hard_deadline(30.0):
            raise ValueError("body error")
    assert signal.getsignal(signal.SIGALRM) is previous_handler
    remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0)
    assert remaining == 0


@posix_only
def test_hard_deadline_nested_inner_fires_first():
    with pytest.raises(HardDeadlineExceeded):
        with hard_deadline(30.0):
            with hard_deadline(0.05):
                time.sleep(5)
    remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0)
    assert remaining == 0


@posix_only
def test_hard_deadline_noop_off_main_thread():
    outcome = {}

    def body():
        try:
            with hard_deadline(0.01):
                time.sleep(0.1)
            outcome["ok"] = True
        except BaseException as exc:  # pragma: no cover - failure path
            outcome["error"] = exc

    worker = threading.Thread(target=body)
    worker.start()
    worker.join()
    assert outcome.get("ok") is True


def test_recursion_headroom_restores():
    import sys

    before = sys.getrecursionlimit()
    with recursion_headroom(before + 500):
        assert sys.getrecursionlimit() == before + 500
    assert sys.getrecursionlimit() == before
