"""The solver-backend equivalence contract (DESIGN.md §16).

The demand engine, the DBM closure tier, and the hybrid scheduler are
interchangeable proof engines: over any program they must eliminate
exactly the same checks, preserve exactly the same trap behavior, and —
in certify mode — emit witnesses the unchanged checker accepts.  The
lattice *label* (TRUE vs REDUCED) may differ on harmless-cycle proofs
(the demand memo's budget subsumption can coarsen TRUE to REDUCED
depending on traversal order); the elimination decision may not.

The negative half: a corrupted DBM cell must never produce a wrong
elimination.  An inconsistent corruption fails witness reconstruction
(the backend conservatively keeps the check); a consistent corruption
builds a plausible witness that the independent certificate replay then
rejects — zero trust in the solver either way.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.corpus import CORPUS, get
from repro.core.abcd import ABCDConfig
from repro.core.backend import (
    HYBRID_CROSSOVER_CHECKS,
    SOLVER_BACKENDS,
    resolve_backend,
)
from repro.core import dbm as dbm_module
from repro.core.dbm import ClosureMatrix
from repro.fuzz.generator import generate_source
from repro.pipeline import abcd, compile_source
from repro.runtime.interpreter import run_program

BACKENDS = list(SOLVER_BACKENDS)

#: Corpus slice for the per-test sweeps (cycle-heavy, φ-heavy, and
#: budget-pattern-diverse programs); the full corpus runs in CI's
#: ablation smoke and the bench ablation block.
SAMPLE = ("Sieve", "Qsort", "biDirBubbleSort", "jack", "bytemark")

FUZZ_SEEDS = range(0, 24)


def _analyze(source, backend, certify):
    program = compile_source(source)
    config = ABCDConfig(solver_backend=backend, certify=certify)
    report = abcd(program, config)
    return program, report


def _elimination_view(report):
    return sorted(
        (a.function, a.check_id, a.kind, a.eliminated, a.scope)
        for a in report.analyses
    )


class TestEliminationEquivalence:
    @pytest.mark.parametrize("certify", [False, True], ids=["plain", "certify"])
    @pytest.mark.parametrize("name", SAMPLE)
    def test_corpus_backends_agree(self, name, certify):
        source = get(name).source()
        _, base = _analyze(source, "demand", certify)
        baseline = _elimination_view(base)
        assert base.eliminated_ids, name  # the sweep must prove something
        for backend in ("closure", "hybrid"):
            _, report = _analyze(source, backend, certify)
            assert _elimination_view(report) == baseline, (name, backend)
            assert report.eliminated_ids == base.eliminated_ids
            assert not report.certificates_rejected
            assert not report.quarantined_functions

    def test_fuzz_programs_agree_and_traps_match(self):
        compared = 0
        for seed in FUZZ_SEEDS:
            source = generate_source(seed)
            try:
                program, base = _analyze(source, "demand", False)
            except Exception:
                continue  # generator corner the frontend rejects: no contract
            base_run = _run(program)
            compared += 1
            for backend in ("closure", "hybrid"):
                other_program, report = _analyze(source, backend, False)
                assert report.eliminated_ids == base.eliminated_ids, (
                    seed,
                    backend,
                )
                # Same eliminations must yield the same observable
                # behavior — value and trap identity, not just counts.
                assert _run(other_program) == base_run, (seed, backend)
        assert compared >= 20

    def test_certified_fuzz_programs_all_accept(self):
        for seed in (1, 5, 9, 13):
            source = generate_source(seed)
            for backend in ("closure", "hybrid"):
                _, report = _analyze(source, backend, True)
                assert report.certificates_rejected == 0, (seed, backend)
                assert report.certificates_emitted == (
                    report.certificates_accepted
                ), (seed, backend)


def _run(program):
    try:
        result = run_program(program, "main", fuel=2_000_000)
        return ("value", result.value)
    except Exception as exc:  # traps compare by type + message
        return ("trap", type(exc).__name__, str(exc))


class TestHybridScheduler:
    def test_plain_mode_always_picks_demand(self):
        config = ABCDConfig(solver_backend="hybrid")
        for count in (0, HYBRID_CROSSOVER_CHECKS, 10 * HYBRID_CROSSOVER_CHECKS):
            assert resolve_backend(config, count) == "demand"

    def test_certify_mode_switches_at_the_measured_crossover(self):
        config = ABCDConfig(solver_backend="hybrid", certify=True)
        assert resolve_backend(config, HYBRID_CROSSOVER_CHECKS - 1) == "demand"
        assert resolve_backend(config, HYBRID_CROSSOVER_CHECKS) == "closure"

    def test_explicit_settings_are_verbatim(self):
        for name in ("demand", "closure"):
            assert resolve_backend(ABCDConfig(solver_backend=name), 0) == name

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(ABCDConfig(solver_backend="oracle"), 1)


class TestCorruptedMatrix:
    """A corrupted DBM cell must never survive to a wrong elimination."""

    def _corrupt_rows(self, matrix, delta):
        """Shift every finite closed cell (and axiom) by ``delta`` —
        a *consistent* corruption: edge choices still line up, so
        witness reconstruction succeeds and only replay can object."""
        for row in matrix.rows.values():
            for i in range(len(row.values)):
                if math.isfinite(row.values[i]):
                    row.values[i] += delta
                if math.isfinite(row.values_true[i]):
                    row.values_true[i] += delta
                if math.isfinite(row.axiom[i]):
                    row.axiom[i] += delta

    def test_consistent_corruption_is_caught_by_replay(self, monkeypatch):
        # The upper check of ``a[i + 1]`` under an ``i < len(a)`` guard
        # is honestly unprovable (true threshold 0, budget -1).  A
        # consistent 2-tighter shift of the closed matrix flips it to
        # "provable" and still reconstructs a structurally plausible
        # witness — whose replay against the *real* graph then rejects
        # the claimed bound, revoking the elimination.
        source = (
            "fn main(): int {\n"
            "  let a: int[] = new int[8];\n"
            "  let s: int = 0;\n"
            "  for (let i: int = 0; i < len(a); i = i + 1) {\n"
            "    s = s + a[i + 1];\n"
            "  }\n"
            "  return s;\n"
            "}\n"
        )
        honest = abcd(
            compile_source(source),
            ABCDConfig(solver_backend="closure", certify=True),
        )
        honest_kept = {
            a.check_id for a in honest.analyses if not a.eliminated
        }
        assert honest_kept, "expected an unprovable check in the program"
        assert honest.certificates_rejected == 0

        original_evaluate = ClosureMatrix._evaluate
        corrupter = self

        def corrupted_evaluate(matrix, row, root):
            original_evaluate(matrix, row, root)
            corrupter._corrupt_rows(matrix, -2)

        monkeypatch.setattr(ClosureMatrix, "_evaluate", corrupted_evaluate)
        report = abcd(
            compile_source(source),
            ABCDConfig(solver_backend="closure", certify=True),
        )
        # The flipped check's certificate replays with an obligation
        # below its true threshold: rejected and revoked, never
        # silently eliminated.
        assert report.certificates_rejected >= 1
        assert report.eliminated_ids == honest.eliminated_ids
        for analysis in report.analyses:
            if analysis.check_id in honest_kept:
                assert not analysis.eliminated, analysis.check_id

    def test_inconsistent_corruption_fails_witness_build(self, monkeypatch):
        # Corrupting only the *queried* cell (not its justifying edges)
        # leaves no in-edge attaining the claimed bound: witness
        # reconstruction fails and the backend conservatively keeps the
        # check — it never fabricates a certificate.
        source = get("Sieve").source()

        original_query = ClosureMatrix.query

        def lying_query(matrix, row, target):
            threshold, true_threshold, exhausted = original_query(
                matrix, row, target
            )
            if math.isfinite(threshold):
                threshold -= 2
                true_threshold = threshold
            return threshold, true_threshold, exhausted

        monkeypatch.setattr(ClosureMatrix, "query", lying_query)
        program = compile_source(source)
        report = abcd(
            program, ABCDConfig(solver_backend="closure", certify=True)
        )
        assert report.certificates_rejected == 0
        # Reconstruction failures surface as budget-exhausted keeps, so
        # the run must not have eliminated more than the honest engine.
        honest = abcd(
            compile_source(source),
            ABCDConfig(solver_backend="demand", certify=True),
        )
        assert report.eliminated_ids <= honest.eliminated_ids

    def test_direct_cell_corruption_rejects_at_the_matrix_level(self):
        # The same contract exercised without the pipeline: corrupt the
        # closed matrix of a real bundle and replay the witness by hand.
        from repro.certify.checker import CertificateRejected, check_witness
        from repro.certify.witness import witness_from_choices
        from repro.core.constraints import build_graphs
        from repro.core.graph import len_node, var_node
        from repro.ir.instructions import CheckUpper, Var

        program = compile_source(get("Sieve").source())
        fn = program.function("sieve")
        bundle = build_graphs(fn)
        view = (
            bundle.dual.view("upper")
            if bundle.dual is not None
            else bundle.upper
        )

        def provable_query():
            matrix = ClosureMatrix(view)
            for instr in fn.all_instructions():
                if not isinstance(instr, CheckUpper):
                    continue
                if not isinstance(instr.index, Var):
                    continue
                source = len_node(instr.array)
                target = var_node(instr.index.name)
                row = matrix.row(source)
                matrix.ensure(row, target)
                threshold, _, _ = matrix.query(row, target)
                if threshold <= -1:
                    return matrix, row, source, target
            raise AssertionError("no provable upper check in sieve")

        matrix, row, source, target = provable_query()
        witness = witness_from_choices(target, lambda v: matrix.choose(row, v))
        check_witness(bundle.upper, source, target, -1, witness)

        # Consistently shift the whole row 2 tighter: the choice
        # structure still lines up, the witness builds — and the replay
        # against the *real* graph rejects the claimed -3 bound.
        for i in range(len(row.values)):
            if math.isfinite(row.values[i]):
                row.values[i] -= 2
            if math.isfinite(row.values_true[i]):
                row.values_true[i] -= 2
            if math.isfinite(row.axiom[i]):
                row.axiom[i] -= 2
        bad_witness = witness_from_choices(
            target, lambda v: matrix.choose(row, v)
        )
        with pytest.raises(CertificateRejected):
            check_witness(bundle.upper, source, target, -3, bad_witness)
