"""IR data structure, printer, and verifier tests."""

import pytest

from repro.errors import IRVerificationError
from repro.frontend.types import INT, VOID
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayStore,
    BinOp,
    Branch,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Jump,
    Phi,
    Pi,
    PiPredicate,
    Return,
    Var,
)
from repro.ir.printer import format_function
from repro.ir.verifier import verify_function


def make_linear_function() -> Function:
    fn = Function("f", ["x"], [INT], INT)
    block = fn.new_block("entry")
    fn.entry = block.label
    block.body.append(BinOp("y", "add", Var("x"), Const(1)))
    block.terminator = Return(Var("y"))
    return fn


class TestInstructions:
    def test_copy_uses_and_defs(self):
        instr = Copy("a", Var("b"))
        assert instr.used_vars() == ["b"]
        assert instr.defs() == "a"

    def test_const_operand_not_a_use(self):
        instr = Copy("a", Const(5))
        assert instr.used_vars() == []

    def test_binop_uses(self):
        instr = BinOp("d", "add", Var("x"), Var("y"))
        assert instr.used_vars() == ["x", "y"]

    def test_rename_uses_binop(self):
        instr = BinOp("d", "add", Var("x"), Const(1))
        instr.rename_uses({"x": "x.3"})
        assert instr.lhs == Var("x.3")

    def test_rename_leaves_unmapped(self):
        instr = BinOp("d", "add", Var("x"), Var("y"))
        instr.rename_uses({"x": "x.1"})
        assert instr.rhs == Var("y")

    def test_array_store_uses_all_three(self):
        instr = ArrayStore("a", Var("i"), Var("v"))
        assert set(instr.used_vars()) == {"a", "i", "v"}
        assert instr.defs() is None

    def test_check_upper_uses_array_and_index(self):
        instr = CheckUpper("a", Var("i"), 0)
        assert set(instr.used_vars()) == {"a", "i"}

    def test_phi_uses_and_rename(self):
        phi = Phi("x", {"b1": Var("x1"), "b2": Const(0)})
        assert phi.used_vars() == ["x1"] or set(phi.used_vars()) == {"x1"}
        phi.rename_uses({"x1": "x1.0"})
        assert phi.incomings["b1"] == Var("x1.0")

    def test_pi_uses_include_predicate(self):
        pi = Pi("i2", "i1", PiPredicate("lt", other=Var("n")))
        assert set(pi.used_vars()) == {"i1", "n"}

    def test_pi_arraylen_predicate_uses_array(self):
        pi = Pi("i2", "i1", PiPredicate("lt", arraylen_of="a"))
        assert set(pi.used_vars()) == {"i1", "a"}
        pi.rename_uses({"a": "a.0", "i1": "i1.0"})
        assert pi.predicate.arraylen_of == "a.0"
        assert pi.src == "i1.0"

    def test_terminator_flags(self):
        assert Jump("x").is_terminator
        assert Branch(Var("c"), "a", "b").is_terminator
        assert Return(None).is_terminator
        assert not Copy("a", Const(1)).is_terminator

    def test_str_representations(self):
        assert "phi" in str(Phi("x", {}))
        assert "pi" in str(Pi("a", "b", PiPredicate("ge", other=Const(0))))
        assert "checkupper" in str(CheckUpper("a", Var("i"), 3))
        assert "#3" in str(CheckUpper("a", Var("i"), 3))


class TestFunctionStructure:
    def test_new_block_unique_labels(self):
        fn = Function("f", [], [], VOID)
        labels = {fn.new_block("b").label for _ in range(10)}
        assert len(labels) == 10

    def test_duplicate_block_rejected(self):
        fn = Function("f", [], [], VOID)
        block = fn.new_block("x")
        with pytest.raises(ValueError):
            fn.add_block(BasicBlock(block.label))

    def test_new_temp_unique(self):
        fn = Function("f", [], [], VOID)
        temps = {fn.new_temp() for _ in range(10)}
        assert len(temps) == 10

    def test_successors_of_branch(self):
        block = BasicBlock("b")
        block.terminator = Branch(Var("c"), "t", "f")
        assert block.successors() == ["t", "f"]

    def test_replace_successor(self):
        block = BasicBlock("b")
        block.terminator = Branch(Var("c"), "t", "f")
        block.replace_successor("f", "m")
        assert block.successors() == ["t", "m"]

    def test_predecessors(self):
        fn = make_linear_function()
        b2 = fn.new_block("next")
        b2.terminator = Return(None)
        fn.entry_block().terminator = Jump(b2.label)
        preds = fn.predecessors()
        assert preds[b2.label] == [fn.entry]

    def test_reachable_blocks_reverse_postorder(self):
        fn = Function("f", [], [], VOID)
        a = fn.new_block("a")
        b = fn.new_block("b")
        c = fn.new_block("c")
        fn.entry = a.label
        a.terminator = Branch(Var("x"), b.label, c.label)
        b.terminator = Jump(c.label)
        c.terminator = Return(None)
        order = fn.reachable_blocks()
        assert order[0] == a.label
        assert order.index(b.label) < order.index(c.label)

    def test_remove_unreachable_blocks(self):
        fn = make_linear_function()
        dead = fn.new_block("dead")
        dead.terminator = Return(None)
        removed = fn.remove_unreachable_blocks()
        assert dead.label in removed
        assert dead.label not in fn.blocks

    def test_remove_unreachable_prunes_phi_operands(self):
        fn = Function("f", [], [], VOID)
        a = fn.new_block("a")
        dead = fn.new_block("dead")
        join = fn.new_block("join")
        fn.entry = a.label
        a.terminator = Jump(join.label)
        dead.terminator = Jump(join.label)
        join.phis.append(Phi("x", {a.label: Const(1), dead.label: Const(2)}))
        join.terminator = Return(None)
        fn.remove_unreachable_blocks()
        assert list(join.phis[0].incomings) == [a.label]

    def test_variables_lists_params_and_defs(self):
        fn = make_linear_function()
        assert set(fn.variables()) == {"x", "y"}


class TestProgram:
    def test_check_id_counter(self):
        program = Program()
        assert program.new_check_id() == 0
        assert program.new_check_id() == 1

    def test_guard_group_counter(self):
        program = Program()
        assert program.new_guard_group() == 0
        assert program.new_guard_group() == 1

    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(make_linear_function())
        with pytest.raises(ValueError):
            program.add_function(make_linear_function())


class TestPrinter:
    def test_format_contains_blocks_and_instrs(self):
        fn = make_linear_function()
        text = format_function(fn)
        assert "fn f(x)" in text
        assert "add" in text
        assert "return" in text


class TestVerifier:
    def test_valid_function_passes(self):
        verify_function(make_linear_function())

    def test_missing_terminator_rejected(self):
        fn = make_linear_function()
        fn.entry_block().terminator = None
        with pytest.raises(IRVerificationError, match="terminator"):
            verify_function(fn)

    def test_jump_to_unknown_block_rejected(self):
        fn = make_linear_function()
        fn.entry_block().terminator = Jump("nowhere")
        with pytest.raises(IRVerificationError, match="unknown block"):
            verify_function(fn)

    def test_terminator_in_body_rejected(self):
        fn = make_linear_function()
        fn.entry_block().body.append(Jump(fn.entry))
        with pytest.raises(IRVerificationError, match="terminator"):
            verify_function(fn)

    def test_double_definition_rejected_in_ssa(self):
        fn = make_linear_function()
        fn.ssa_form = "ssa"
        fn.entry_block().body.append(BinOp("y", "add", Var("x"), Const(2)))
        with pytest.raises(IRVerificationError, match="more than once"):
            verify_function(fn)

    def test_use_before_def_rejected_in_ssa(self):
        fn = Function("f", [], [], INT)
        block = fn.new_block("entry")
        fn.entry = block.label
        block.body.append(Copy("a", Var("b")))
        block.body.append(Copy("b", Const(1)))
        block.terminator = Return(Var("a"))
        fn.ssa_form = "ssa"
        with pytest.raises(IRVerificationError, match="before its definition"):
            verify_function(fn)

    def test_use_of_undefined_rejected_in_ssa(self):
        fn = Function("f", [], [], INT)
        block = fn.new_block("entry")
        fn.entry = block.label
        block.terminator = Return(Var("ghost"))
        fn.ssa_form = "ssa"
        with pytest.raises(IRVerificationError, match="undefined"):
            verify_function(fn)

    def test_phi_in_entry_rejected(self):
        fn = make_linear_function()
        fn.entry_block().phis.append(Phi("p", {}))
        with pytest.raises(IRVerificationError, match="entry block"):
            verify_function(fn)

    def test_phi_incoming_mismatch_rejected(self):
        fn = Function("f", [], [], VOID)
        a = fn.new_block("a")
        b = fn.new_block("b")
        fn.entry = a.label
        a.terminator = Jump(b.label)
        b.phis.append(Phi("x", {"wrong": Const(1)}))
        b.terminator = Return(None)
        fn.ssa_form = "ssa"
        with pytest.raises(IRVerificationError, match="incoming"):
            verify_function(fn)
