"""Def-use chain index: unit behaviour and whole-pipeline invariants.

The index (:mod:`repro.ir.defuse`) is built once at lowering and maintained
incrementally by the Function mutator API.  ``assert_consistent`` compares
the live index against a from-scratch rebuild, so the property tests here
reduce to: after any sequence of chain-maintaining passes, the live index
must equal the rebuilt one.
"""

import random

import pytest

import repro.opt as opt
from repro.bench.corpus import get, names
from repro.core.abcd import optimize_function
from repro.errors import DefUseIntegrityError
from repro.ir import format_function
from repro.ir.defuse import DefUseChains
from repro.ir.instructions import BinOp, CheckUpper, Const, Copy, Phi, Var
from repro.ir.verifier import verify_def_use
from repro.pipeline import compile_source

SMALL_SRC = """
fn first(a: int[]): int {
  let i: int = 0;
  let x: int = a[i];
  return x;
}
fn main(): int {
  let a: int[] = new int[4];
  a[0] = 7;
  return first(a);
}
"""


def small_program(standard_opts=False):
    return compile_source(SMALL_SRC, standard_opts=standard_opts)


# ----------------------------------------------------------------------
# Unit behaviour.
# ----------------------------------------------------------------------


class TestQueries:
    def test_index_matches_function_contents(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        manual = list(fn.all_instructions())
        assert chains.instruction_count() == len(manual)
        for instr in manual:
            assert chains.contains(instr)

    def test_type_index_matches_scan(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        scanned = [
            i for i in fn.all_instructions() if isinstance(i, CheckUpper)
        ]
        assert chains.instrs_of_type(CheckUpper) == scanned

    def test_def_block_of_covers_params(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        for param in fn.params:
            assert chains.def_block_of(param) == fn.entry

    def test_every_def_is_indexed(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        for instr in fn.all_instructions():
            dest = instr.defs()
            if dest is not None:
                assert instr in chains.defs_of(dest)


class TestMaintenance:
    def test_append_and_remove_roundtrip(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        label = fn.entry
        extra = Copy("defuse_tmp", Const(3))
        fn.append_instr(label, extra)
        assert chains.contains(extra)
        assert chains.def_of("defuse_tmp") is extra
        fn.remove_instr(label, extra)
        assert not chains.contains(extra)
        assert chains.def_of("defuse_tmp") is None
        chains.assert_consistent("append/remove roundtrip")

    def test_double_register_rejected(self):
        fn = small_program().function("first")
        fn.def_use()
        extra = Copy("defuse_tmp2", Const(1))
        fn.append_instr(fn.entry, extra)
        with pytest.raises(ValueError):
            fn.def_use().register(extra, fn.entry)

    def test_update_uses_tracks_occurrences(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        source = Copy("du_src", Const(1))
        fn.append_instr(fn.entry, source)
        twice = BinOp("du_sum", "add", Var("du_src"), Var("du_src"))
        fn.append_instr(fn.entry, twice)
        assert chains.use_count("du_src") == 2

        def rewrite():
            twice.rhs = Const(0)

        assert chains.update_uses(twice, rewrite)
        assert chains.use_count("du_src") == 1
        chains.assert_consistent("update_uses occurrence diff")

    def test_on_use_removed_hook_fires(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        source = Copy("hook_src", Const(1))
        fn.append_instr(fn.entry, source)
        user = Copy("hook_user", Var("hook_src"))
        fn.append_instr(fn.entry, user)
        dropped = []
        chains.on_use_removed = dropped.append
        try:
            fn.remove_instr(fn.entry, user)
        finally:
            chains.on_use_removed = None
        assert dropped == ["hook_src"]

    def test_set_terminator_swaps_registration(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        label = fn.entry
        old_term = fn.blocks[label].terminator
        fn.set_terminator(label, old_term.clone())
        assert not chains.contains(old_term)
        chains.assert_consistent("set_terminator swap")


class TestIntegrityChecking:
    def test_bypassing_mutators_is_detected(self):
        fn = small_program().function("first")
        chains = fn.def_use()
        fn.blocks[fn.entry].body.append(Copy("sneaky", Const(9)))
        with pytest.raises(DefUseIntegrityError):
            chains.assert_consistent("tampered body")
        fn.rebuild_def_use().assert_consistent("after rebuild")

    def test_verify_def_use_skips_unindexed_functions(self):
        fn = small_program().function("first")
        fn.invalidate_def_use()
        verify_def_use(fn, "no index")  # must not raise (nothing to check)

    def test_verify_def_use_checks_dominance(self):
        fn = small_program().function("first")
        verify_def_use(fn, "clean function")  # full index + dominance pass

    def test_stale_phi_incoming_is_detected(self):
        program = compile_source(
            get("bubbleSort").source(), standard_opts=False
        )
        for fn in program.functions.values():
            chains = fn.def_use()
            phis = chains.instrs_of_type(Phi)
            if not phis:
                continue
            phi = phis[0]
            pred = next(iter(phi.incomings))
            phi.incomings[pred] = Var("no_such_value")  # bypasses update_uses
            with pytest.raises(DefUseIntegrityError):
                chains.assert_consistent("stale φ incoming")
            return
        pytest.skip("corpus program without φs")


# ----------------------------------------------------------------------
# Property: random pass pipelines keep the live index equal to a rebuild.
# ----------------------------------------------------------------------


def _apply_step(step: str, program, fn) -> None:
    if step == "worklist":
        opt.optimize_worklist(fn)
    elif step == "abcd":
        optimize_function(fn, program)
    elif step == "legacy-dense":
        # Legacy dense passes invalidate the index up front; the next
        # def_use() must transparently rebuild a consistent one.
        opt.run_standard_pipeline(fn)
    else:  # pragma: no cover
        raise AssertionError(step)


@pytest.mark.parametrize("name", names())
def test_random_pipelines_keep_chains_consistent(name):
    rng = random.Random(f"defuse-{name}")
    for trial in range(2):
        program = compile_source(get(name).source(), standard_opts=False)
        steps = [
            rng.choice(["worklist", "abcd", "legacy-dense"])
            for _ in range(rng.randint(1, 4))
        ]
        for step_index, step in enumerate(steps):
            for fn in program.functions.values():
                _apply_step(step, program, fn)
                context = f"{name} trial {trial} step {step_index} ({step})"
                fn.def_use().assert_consistent(context)
                verify_def_use(fn, context)


@pytest.mark.parametrize("name", names())
def test_default_pipeline_leaves_consistent_chains(name):
    program = compile_source(get(name).source(), inline=True)
    for fn in program.functions.values():
        chains = fn.def_use()
        chains.assert_consistent(f"{name} after default pipeline")
        rebuilt = DefUseChains.build(fn)
        assert chains.instruction_count() == rebuilt.instruction_count()


def test_chains_survive_formatting():
    """Formatting must not perturb the index (pure read)."""
    program = compile_source(get("bubbleSort").source(), inline=True)
    for fn in program.functions.values():
        before = fn.def_use().instruction_count()
        format_function(fn)
        assert fn.def_use().instruction_count() == before
        fn.def_use().assert_consistent("after formatting")
