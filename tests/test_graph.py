"""Inequality graph data structure tests."""

from repro.core.graph import (
    Edge,
    InequalityGraph,
    Node,
    const_node,
    len_node,
    var_node,
)


class TestNodes:
    def test_var_node_identity(self):
        assert var_node("x") == var_node("x")
        assert var_node("x") != var_node("y")

    def test_len_node_distinct_from_var(self):
        assert len_node("a") != var_node("a")

    def test_const_node_identity(self):
        assert const_node(3) == const_node(3)
        assert const_node(3) != const_node(4)

    def test_str_forms(self):
        assert str(var_node("x.2")) == "x.2"
        assert str(len_node("a.0")) == "len(a.0)"
        assert str(const_node(-1)) == "-1"


class TestEdges:
    def test_add_and_query_in_edges(self):
        graph = InequalityGraph()
        graph.add_edge(var_node("u"), var_node("v"), -1, "b1")
        edges = graph.in_edges(var_node("v"))
        assert len(edges) == 1
        assert edges[0].source == var_node("u")
        assert edges[0].weight == -1
        assert edges[0].block == "b1"

    def test_parallel_edges_keep_strongest(self):
        graph = InequalityGraph()
        graph.add_edge(var_node("u"), var_node("v"), 5)
        graph.add_edge(var_node("u"), var_node("v"), 2)
        graph.add_edge(var_node("u"), var_node("v"), 7)
        edges = graph.in_edges(var_node("v"))
        assert len(edges) == 1
        assert edges[0].weight == 2

    def test_has_predecessors(self):
        graph = InequalityGraph()
        graph.add_edge(var_node("u"), var_node("v"), 0)
        assert graph.has_predecessors(var_node("v"))
        assert not graph.has_predecessors(var_node("u"))

    def test_phi_marking(self):
        graph = InequalityGraph()
        graph.mark_phi(var_node("p"))
        assert graph.is_phi(var_node("p"))
        assert not graph.is_phi(var_node("q"))

    def test_nodes_enumeration(self):
        graph = InequalityGraph()
        graph.add_edge(len_node("a"), var_node("x"), -1)
        graph.mark_phi(var_node("p"))
        names = {str(n) for n in graph.nodes()}
        assert names == {"len(a)", "x", "p"}


class TestConstantCompletion:
    def test_descending_virtual_edge_exists(self):
        graph = InequalityGraph()
        # Anchor const 10 with a real in-edge.
        graph.add_edge(len_node("a"), const_node(10), 0)
        edges = graph.in_edges(const_node(5))
        virtual = [e for e in edges if e.source == const_node(10)]
        assert len(virtual) == 1
        assert virtual[0].weight == 5 - 10

    def test_no_ascending_virtual_edge(self):
        graph = InequalityGraph()
        graph.add_edge(len_node("a"), const_node(10), 0)
        edges = graph.in_edges(const_node(20))
        assert all(e.source != const_node(10) for e in edges)

    def test_unanchored_consts_offer_no_edges(self):
        graph = InequalityGraph()
        graph.add_edge(const_node(10), var_node("x"), 0)  # 10 is a source only
        assert graph.in_edges(const_node(5)) == []

    def test_lower_graph_negated_const_values(self):
        graph = InequalityGraph("lower")
        assert graph.const_value(const_node(5)) == -5
        assert graph.const_value(const_node(0)) == 0
        # In negated space, 0 is "larger" than 5, so the virtual edge goes
        # from an anchored 0 down to 5.
        graph.add_edge(len_node("a"), const_node(0), 0)
        edges = graph.in_edges(const_node(5))
        virtual = [e for e in edges if e.source == const_node(0)]
        assert len(virtual) == 1
        assert virtual[0].weight == -5  # cv(5) - cv(0) = -5 - 0

    def test_completion_is_acyclic(self):
        graph = InequalityGraph()
        graph.add_edge(len_node("a"), const_node(10), 0)
        graph.add_edge(len_node("b"), const_node(7), 0)
        # 10 -> 7 exists; 7 -> 10 must not (ascending).
        assert any(e.source == const_node(10) for e in graph.in_edges(const_node(7)))
        assert not any(
            e.source == const_node(7) for e in graph.in_edges(const_node(10))
        )


class TestDot:
    def test_dot_output_contains_nodes_and_weights(self):
        graph = InequalityGraph()
        graph.add_edge(len_node("a"), var_node("x"), -1)
        graph.mark_phi(var_node("x"))
        dot = graph.to_dot()
        assert "len(a)" in dot
        assert '"x"' in dot
        assert 'label="-1"' in dot
        assert "doublecircle" in dot  # φ node styling
