"""Section 7.2 merged unsigned checks: transformation and VM semantics."""

import pytest

from repro.core.extensions import merge_program_unsigned_checks, merge_unsigned_checks
from repro.errors import BoundsCheckError
from repro.ir.instructions import CheckLower, CheckUnsigned, CheckUpper
from repro.ir.verifier import verify_program
from repro.pipeline import abcd, clone_program, compile_source, run

#: Checks that survive ABCD: the index comes from an opaque division.
SURVIVOR_SRC = """
fn probe(a: int[], x: int): int {
  let idx: int = x / 3;
  return a[idx];
}
fn main(): int {
  let a: int[] = new int[16];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i * 11;
  }
  let s: int = 0;
  for (let q: int = 0; q < 40; q = q + 1) {
    s = s + probe(a, q);
  }
  return s;
}
"""


def count_checks(program):
    lowers = uppers = merged = 0
    for fn in program.functions.values():
        for instr in fn.all_instructions():
            if isinstance(instr, CheckLower):
                lowers += 1
            elif isinstance(instr, CheckUpper):
                uppers += 1
            elif isinstance(instr, CheckUnsigned):
                merged += 1
    return lowers, uppers, merged


class TestMergeTransformation:
    def test_surviving_pair_merged(self):
        program = compile_source(SURVIVOR_SRC)
        abcd(program)
        lowers_before, uppers_before, _ = count_checks(program)
        assert lowers_before >= 1 and uppers_before >= 1
        report = merge_program_unsigned_checks(program)
        assert report.merged_pairs >= 1
        lowers, uppers, merged = count_checks(program)
        assert merged == report.merged_pairs
        assert lowers == lowers_before - report.merged_pairs
        assert uppers == uppers_before - report.merged_pairs
        verify_program(program)

    def test_behaviour_preserved(self):
        program = compile_source(SURVIVOR_SRC)
        baseline = clone_program(program)
        abcd(program)
        merge_program_unsigned_checks(program)
        assert run(program, "main").value == run(baseline, "main").value

    def test_cycles_reduced(self):
        program = compile_source(SURVIVOR_SRC)
        abcd(program)
        unmerged = clone_program(program)
        merge_program_unsigned_checks(program)
        merged_run = run(program, "main")
        unmerged_run = run(unmerged, "main")
        assert merged_run.stats.cycles < unmerged_run.stats.cycles
        assert merged_run.stats.unsigned_checks > 0

    def test_check_counting_stays_comparable(self):
        """A merged check still counts one lower + one upper execution so
        Figure-6 accounting is unaffected."""
        program = compile_source(SURVIVOR_SRC)
        baseline = clone_program(program)
        merge_program_unsigned_checks(program)
        merged_run = run(program, "main")
        base_run = run(baseline, "main")
        assert merged_run.stats.lower_checks == base_run.stats.lower_checks
        assert merged_run.stats.upper_checks == base_run.stats.upper_checks

    def test_guarded_checks_not_merged(self):
        src = """
fn kernel(data: int[], probe: int, iters: int): int {
  let acc: int = 0;
  let iter: int = 0;
  while (iter < iters) {
    acc = acc + data[probe];
    iter = iter + 1;
  }
  return acc;
}
fn main(): int {
  let data: int[] = new int[32];
  return kernel(data, 5, 20);
}
"""
        from repro.runtime.profiler import collect_profile

        program = compile_source(src)
        profile = collect_profile(program, "main")
        abcd(program, pre=True, profile=profile)
        # The PRE-guarded originals must not be fused (their guard
        # semantics differ); only unguarded pairs are candidates.
        before = count_checks(program)
        merge_program_unsigned_checks(program)
        guarded = [
            i
            for fn in program.functions.values()
            for i in fn.all_instructions()
            if isinstance(i, (CheckLower, CheckUpper)) and i.guard_group is not None
        ]
        assert guarded  # still split and guarded
        assert run(program, "main").value is not None
        del before


class TestMergedCheckSemantics:
    def build(self):
        program = compile_source(SURVIVOR_SRC)
        merge_program_unsigned_checks(program)
        return program

    def test_negative_index_raises_lower(self):
        from repro.runtime.values import ArrayValue

        program = self.build()
        with pytest.raises(BoundsCheckError) as excinfo:
            run(program, "probe", [ArrayValue(4), -9])
        assert excinfo.value.kind == "lower"
        assert excinfo.value.index == -3

    def test_overflow_index_raises_upper(self):
        from repro.runtime.values import ArrayValue

        program = self.build()
        with pytest.raises(BoundsCheckError) as excinfo:
            run(program, "probe", [ArrayValue(4), 30])
        assert excinfo.value.kind == "upper"

    def test_failure_ids_match_unmerged_program(self):
        from repro.runtime.values import ArrayValue

        merged = self.build()
        unmerged = compile_source(SURVIVOR_SRC)
        for bad in (-6, 50):
            with pytest.raises(BoundsCheckError) as merged_exc:
                run(merged, "probe", [ArrayValue(4), bad])
            with pytest.raises(BoundsCheckError) as unmerged_exc:
                run(unmerged, "probe", [ArrayValue(4), bad])
            assert merged_exc.value.check_id == unmerged_exc.value.check_id

    def test_in_range_passes(self):
        from repro.runtime.values import ArrayValue

        program = self.build()
        array = ArrayValue.from_list([5, 6, 7, 8])
        assert run(program, "probe", [array, 9]).value == 8


class TestMergeIdempotence:
    def test_second_run_is_noop(self):
        program = compile_source(SURVIVOR_SRC)
        first = merge_program_unsigned_checks(program)
        second = merge_program_unsigned_checks(program)
        assert first.merged_pairs >= 1
        assert second.merged_pairs == 0
