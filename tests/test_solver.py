"""Demand-driven solver (Figure 5) tests on hand-built inequality graphs."""

from repro.core.graph import InequalityGraph, const_node, len_node, var_node
from repro.core.lattice import ProofResult, join_all, meet_all
from repro.core.solver import DemandProver, demand_prove

A = len_node("A")


def prove(graph, source, target, budget):
    return demand_prove(graph, source, target, budget)


class TestLattice:
    def test_ordering(self):
        assert ProofResult.TRUE.meet(ProofResult.REDUCED) is ProofResult.REDUCED
        assert ProofResult.REDUCED.meet(ProofResult.FALSE) is ProofResult.FALSE
        assert ProofResult.TRUE.join(ProofResult.FALSE) is ProofResult.TRUE
        assert ProofResult.REDUCED.join(ProofResult.FALSE) is ProofResult.REDUCED

    def test_proven(self):
        assert ProofResult.TRUE.proven
        assert ProofResult.REDUCED.proven
        assert not ProofResult.FALSE.proven

    def test_meet_all_join_all(self):
        assert meet_all([]) is ProofResult.TRUE
        assert join_all([]) is ProofResult.FALSE
        assert meet_all([ProofResult.TRUE, ProofResult.FALSE]) is ProofResult.FALSE
        assert join_all([ProofResult.FALSE, ProofResult.REDUCED]) is ProofResult.REDUCED


class TestSimplePaths:
    def test_direct_edge_within_budget(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -1)  # x <= len(A) - 1
        assert prove(graph, A, var_node("x"), -1).proven

    def test_direct_edge_exceeding_budget(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), 0)  # only x <= len(A)
        assert not prove(graph, A, var_node("x"), -1).proven

    def test_chain_accumulates_weights(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("n"), 0)
        graph.add_edge(var_node("n"), var_node("i"), -2)
        assert prove(graph, A, var_node("i"), -1).proven
        assert prove(graph, A, var_node("i"), -2).proven
        assert not prove(graph, A, var_node("i"), -3).proven

    def test_source_equals_target(self):
        graph = InequalityGraph()
        assert prove(graph, A, A, 0).proven
        assert prove(graph, A, A, 5).proven
        assert not prove(graph, A, A, -1).proven

    def test_disconnected_target_fails(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -1)
        assert not prove(graph, A, var_node("unrelated"), 100).proven

    def test_min_node_any_path_suffices(self):
        graph = InequalityGraph()
        graph.add_edge(var_node("bad"), var_node("x"), 0)  # dead end
        graph.add_edge(A, var_node("x"), -1)
        assert prove(graph, A, var_node("x"), -1).proven

    def test_min_node_all_paths_failing(self):
        graph = InequalityGraph()
        graph.add_edge(var_node("dead1"), var_node("x"), 0)
        graph.add_edge(var_node("dead2"), var_node("x"), -5)
        assert not prove(graph, A, var_node("x"), 0).proven


class TestPhiSemantics:
    def test_phi_needs_all_arguments(self):
        graph = InequalityGraph()
        phi = var_node("p")
        graph.mark_phi(phi)
        graph.add_edge(var_node("a1"), phi, 0)
        graph.add_edge(var_node("a2"), phi, 0)
        graph.add_edge(A, var_node("a1"), -1)
        # a2 unreachable from A: the φ must fail.
        assert not prove(graph, A, phi, -1).proven

    def test_phi_takes_weakest_argument(self):
        graph = InequalityGraph()
        phi = var_node("p")
        graph.mark_phi(phi)
        graph.add_edge(var_node("a1"), phi, 0)
        graph.add_edge(var_node("a2"), phi, 0)
        graph.add_edge(A, var_node("a1"), -3)
        graph.add_edge(A, var_node("a2"), -1)
        assert prove(graph, A, phi, -1).proven
        assert not prove(graph, A, phi, -2).proven  # weakest arg is -1


class TestCycles:
    def build_loop(self, increment):
        """φ(entry, back) with back = φ + increment (a loop induction)."""
        graph = InequalityGraph()
        phi = var_node("i1")
        back = var_node("i2")
        graph.mark_phi(phi)
        graph.add_edge(var_node("i0"), phi, 0)
        graph.add_edge(back, phi, 0)
        graph.add_edge(phi, back, increment)
        graph.add_edge(A, var_node("i0"), -1)
        return graph, phi

    def test_amplifying_cycle_fails(self):
        graph, phi = self.build_loop(increment=1)  # i = i + 1
        assert not prove(graph, A, phi, -1).proven

    def test_zero_cycle_reduces(self):
        graph, phi = self.build_loop(increment=0)
        outcome = prove(graph, A, phi, -1)
        assert outcome.proven
        assert outcome.result is ProofResult.REDUCED

    def test_negative_cycle_reduces(self):
        graph, phi = self.build_loop(increment=-1)  # i = i - 1
        assert prove(graph, A, phi, -1).proven

    def test_amplifying_cycle_broken_by_min_escape(self):
        # The running example's j: an incrementing loop var additionally
        # bounded through a π edge to something reachable from A.
        graph, phi = self.build_loop(increment=1)
        pi = var_node("j2")
        graph.add_edge(phi, pi, 0)        # value flow through π
        graph.add_edge(var_node("limit"), pi, -1)  # π predicate j2 < limit
        graph.add_edge(A, var_node("limit"), 0)
        assert prove(graph, A, pi, -1).proven

    def test_unreachable_cycle_is_not_proven(self):
        # A φ-cycle with its entry argument NOT connected to the source
        # must fail even though the cycle itself reduces.
        graph = InequalityGraph()
        phi = var_node("p")
        back = var_node("b")
        graph.mark_phi(phi)
        graph.add_edge(var_node("outside"), phi, 0)
        graph.add_edge(back, phi, 0)
        graph.add_edge(phi, back, 0)
        assert not prove(graph, A, phi, 10).proven


class TestConstants:
    def test_const_to_const_arithmetic(self):
        graph = InequalityGraph()
        assert prove(graph, const_node(0), const_node(5), 5).proven
        assert prove(graph, const_node(0), const_node(5), 4).proven is False
        assert prove(graph, const_node(10), const_node(5), -5).proven

    def test_lower_graph_negated_arithmetic(self):
        graph = InequalityGraph("lower")
        # Proving x >= 0 for x = 5 : (-5) - (-0) <= 0.
        assert prove(graph, const_node(0), const_node(5), 0).proven
        assert not prove(graph, const_node(0), const_node(-3), 0).proven

    def test_path_through_anchored_const(self):
        graph = InequalityGraph()
        # a := new int[10]  gives  10 <= len(a).
        graph.add_edge(A, const_node(10), 0)
        # x := 5  gives  x <= 5.
        graph.add_edge(const_node(5), var_node("x"), 0)
        # x <= 5 <= 10 - 5 <= len(A) - 5: provable at budget -1.
        assert prove(graph, A, var_node("x"), -1).proven

    def test_lower_check_via_const_chain(self):
        graph = InequalityGraph("lower")
        graph.add_edge(const_node(5), var_node("x"), 0)  # x >= 5
        assert prove(graph, const_node(0), var_node("x"), 0).proven


class TestMemoization:
    def test_subsumption_true(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -2)
        prover = DemandProver(graph)
        assert prover.demand_prove(A, var_node("x"), -2).proven
        steps_before = prover.steps
        # A weaker query must be answered from the memo.
        assert prover.demand_prove(A, var_node("x"), -1).proven
        assert prover.steps == steps_before + 1

    def test_subsumption_false(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), 0)
        prover = DemandProver(graph)
        assert not prover.demand_prove(A, var_node("x"), -1).proven
        steps_before = prover.steps
        assert not prover.demand_prove(A, var_node("x"), -2).proven
        assert prover.steps == steps_before + 1

    def test_steps_counted(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("n"), 0)
        graph.add_edge(var_node("n"), var_node("i"), -1)
        outcome = demand_prove(graph, A, var_node("i"), -1)
        assert outcome.steps >= 2


class TestEdgeFilter:
    def test_filter_restricts_proof(self):
        graph = InequalityGraph()
        graph.add_edge(A, var_node("x"), -1, block="b1")
        ok = demand_prove(graph, A, var_node("x"), -1, edge_filter=lambda e: e.block == "b1")
        assert ok.proven
        blocked = demand_prove(
            graph, A, var_node("x"), -1, edge_filter=lambda e: e.block == "b2"
        )
        assert not blocked.proven


class TestPaperFigure4:
    """The inequality graph of the running example (paper, Figure 4)."""

    def build(self):
        g = InequalityGraph()
        # Vertices named as in the paper.
        st0, st1, st2, st3 = (var_node(f"st{i}") for i in range(4))
        j0, j1, j2, j3, j4 = (var_node(f"j{i}") for i in range(5))
        t0 = var_node("t0")
        limit0, limit1, limit2, limit3, limit4 = (
            var_node(f"limit{i}") for i in range(5)
        )
        length = len_node("A")
        minus1 = const_node(-1)

        g.mark_phi(st1)
        g.mark_phi(j1)
        g.mark_phi(limit1)

        # limit0 := A.length ; st0 := -1.
        g.add_edge(length, limit0, 0)
        g.add_edge(minus1, st0, 0)
        # while-φs.
        g.add_edge(st0, st1, 0)
        g.add_edge(st3, st1, 0)
        g.add_edge(limit0, limit1, 0)
        g.add_edge(limit3, limit1, 0)
        # st2 := π(st1) [st1 < limit1] ; limit2 := π(limit1).
        g.add_edge(st1, st2, 0)
        g.add_edge(limit2, st2, -1)
        g.add_edge(limit1, limit2, 0)
        # st3 := st2 + 1 ; limit3 := limit2 - 1 ; j0 := st3.
        g.add_edge(st2, st3, 1)
        g.add_edge(limit2, limit3, -1)
        g.add_edge(st3, j0, 0)
        # for-φ.
        g.add_edge(j0, j1, 0)
        g.add_edge(j4, j1, 0)
        # j2 := π(j1) [j1 < limit3] ; limit4 := π(limit3).
        g.add_edge(j1, j2, 0)
        g.add_edge(limit4, j2, -1)
        g.add_edge(limit3, limit4, 0)
        # j3 := π(j2) [checked] ; t0 := j3 + 1 ; j4 := j3 + 1.
        g.add_edge(j2, j3, 0)
        g.add_edge(length, j3, -1)
        g.add_edge(j3, t0, 1)
        g.add_edge(j3, j4, 1)
        return g, length

    def test_check_j2_redundant(self):
        """Paper: the distance between A.length and j2 is -2."""
        g, length = self.build()
        assert demand_prove(g, length, var_node("j2"), -1).proven
        assert demand_prove(g, length, var_node("j2"), -2).proven
        assert not demand_prove(g, length, var_node("j2"), -3).proven

    def test_check_t0_redundant(self):
        """check A[j+1]: t0 <= A.length - 1 via the limit chain."""
        g, length = self.build()
        assert demand_prove(g, length, var_node("t0"), -1).proven

    def test_st_amplifying_cycle_alone_insufficient(self):
        """Without the limit path, st's incrementing cycle proves nothing."""
        g, length = self.build()
        # st1 is bounded only through limit2 - 1 via st2's π edge.
        assert demand_prove(g, length, var_node("st1"), 0).proven

    def test_j1_unbounded_at_strong_budget(self):
        g, length = self.build()
        # j1's φ merges j0 and the incremented j4: it is <= A.length - 1
        # only after the π; j1 itself is <= A.length (weakest argument
        # bound is j4 = j3+1 <= A.length - 1 + 1).
        assert demand_prove(g, length, var_node("j1"), 0).proven


class TestDepthAccounting:
    """``max_depth`` bounds explicit frames; ``depth_reached`` reports the
    frame depth the query actually built (exact counts, not headroom
    estimates — the recursive engine under-reported by its slack)."""

    def _chain(self, length):
        graph = InequalityGraph()
        prev = A
        for k in range(length):
            node = var_node(f"v{k}")
            graph.add_edge(prev, node, 0)
            prev = node
        return graph, prev

    def test_depth_exhaustion_reports_frames_actually_built(self):
        graph, target = self._chain(10)
        prover = DemandProver(graph, max_depth=3)
        outcome = prover.demand_prove(A, target, 0)
        assert outcome.result is ProofResult.FALSE
        assert outcome.budget_exhausted
        assert outcome.exhausted_budget == "depth"
        # Pushes succeed while len(stack) <= max_depth, so exactly
        # max_depth + 1 frames existed when the bound refused the next one.
        assert outcome.depth_reached == 4
        assert prover.frames_pushed == 4
        assert prover.frontier_peak == 4

    def test_successful_chain_reports_peak_depth(self):
        graph, target = self._chain(6)
        prover = DemandProver(graph)
        outcome = prover.demand_prove(A, target, 0)
        assert outcome.proven
        assert outcome.depth_reached == 6
        assert prover.frames_pushed == 6
        assert prover.frontier_peak == 6

    def test_depth_budget_equal_to_chain_suffices(self):
        graph, target = self._chain(6)
        outcome = DemandProver(graph, max_depth=6).demand_prove(A, target, 0)
        assert outcome.proven
        assert not outcome.budget_exhausted
        assert outcome.depth_reached == 6

    def test_deep_chain_needs_no_interpreter_recursion(self):
        import sys

        graph, target = self._chain(5000)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            outcome = DemandProver(graph).demand_prove(A, target, 0)
        finally:
            sys.setrecursionlimit(limit)
        assert outcome.proven
        assert outcome.depth_reached == 5000


class TestDualSession:
    """One session over a DualGraph serves both directions with
    direction-tagged memo entries."""

    def _dual(self):
        from repro.core.graph import DualGraph

        dual = DualGraph()
        dual.add_edge(A, var_node("x"), upper=-1)
        dual.add_edge(const_node(0), var_node("x"), lower=0)
        return dual

    def test_serves_both_directions(self):
        prover = DemandProver(self._dual())
        upper = prover.demand_prove(A, var_node("x"), -1, direction="upper")
        lower = prover.demand_prove(
            const_node(0), var_node("x"), 0, direction="lower"
        )
        assert upper.proven and lower.proven
        assert prover.steps_by_direction["upper"] > 0
        assert prover.steps_by_direction["lower"] > 0

    def test_dual_session_requires_explicit_direction(self):
        import pytest

        with pytest.raises(ValueError):
            DemandProver(self._dual()).demand_prove(A, var_node("x"), -1)

    def test_memo_is_direction_tagged(self):
        # x is bounded by len(A) - 1 in upper space only; the lower query
        # must not be answered by the upper memo entry.
        dual = self._dual()
        prover = DemandProver(dual)
        assert prover.demand_prove(A, var_node("x"), -1, direction="upper").proven
        missing = prover.demand_prove(A, var_node("x"), -1, direction="lower")
        assert not missing.proven

    def test_outcome_steps_are_per_query(self):
        prover = DemandProver(self._dual())
        first = prover.demand_prove(A, var_node("x"), -1, direction="upper")
        second = prover.demand_prove(A, var_node("x"), -1, direction="upper")
        assert first.steps >= 1
        # The repeat is answered from the memo in a single step, and the
        # outcome reports the per-query delta, not the session total.
        assert second.steps == 1
        assert prover.steps == first.steps + second.steps
