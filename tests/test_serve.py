"""Tests for the crash-isolated compile service (``src/repro/serve/``).

Covers the protocol layer, the circuit-breaker state machine (driven by
a fake clock), supervisor end-to-end service through real worker
subprocesses, containment of every registered process-level chaos fault,
the crash-recovery property (random SIGKILLs mid-request never lose a
request), and the degradation guarantee (a degraded response is
byte-identical — outcome *and* dynamic counters — to the unoptimized
reference interpreter).
"""

from __future__ import annotations

import io
import os
import random
import signal
import threading
import time

import pytest

from repro.robustness.faults import CHAOS_FAULTS, FATAL_CHAOS_FAULTS
from repro.serve import protocol
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    function_fingerprint,
)
from repro.serve.supervisor import ServeConfig, Supervisor

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="the compile service requires POSIX pipes/signals"
)


SUM_SOURCE = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""

TRAP_SOURCE = """
fn main(): int {
  let a: int[] = new int[4];
  let j: int = 6;
  return a[j];
}
"""

OFF_BY_ONE_SOURCE = """
fn main(): int {
  let a: int[] = new int[5];
  let s: int = 0;
  let i: int = 0;
  while (i <= len(a)) {
    a[i] = i;
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
"""

TYPE_ERROR_SOURCE = """
fn main(): int {
  let a: int[] = new int[4];
  return a + 1;
}
"""


def fast_config(**overrides) -> ServeConfig:
    """Small deadlines/backoffs so failure paths resolve quickly."""
    defaults = dict(
        workers=2,
        deadline=5.0,
        mem_mb=512,
        retries=1,
        backoff_base=0.001,
        backoff_cap=0.01,
        recycle_after=0,
        breaker_threshold=3,
        breaker_cooldown=300.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture
def supervisor():
    sup = Supervisor(config=fast_config())
    yield sup
    sup.shutdown()


def degraded_baseline(source: str, fn: str = "main", args=()):
    """The unoptimized reference: same compile path a degraded worker runs."""
    from repro.serve import worker as worker_module

    return worker_module._serve_request(
        {"op": "run", "id": "ref", "source": source, "fn": fn,
         "args": list(args), "mode": "degraded"},
        None, False, 0,
    )


# ----------------------------------------------------------------------
# Protocol.
# ----------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip_is_byte_stable(self):
        payload = {"op": "run", "id": "r1", "args": [1, 2], "source": "x"}
        once = protocol.encode_frame(payload)
        again = protocol.encode_frame(protocol.decode_frame(once))
        assert once == again
        assert once.endswith(b"\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"\x00\xffnot json{{{")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]")

    def test_decode_rejects_oversized(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b" " * (protocol.MAX_FRAME_BYTES + 1))

    def test_validate_request_unknown_op(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request({"op": "explode"})

    def test_validate_request_requires_source(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request({"op": "run"})

    def test_validate_request_rejects_bool_args(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(
                {"op": "run", "source": "x", "args": [True]}
            )

    def test_validate_request_defaults(self):
        frame = protocol.validate_request({"op": "run", "source": "x"})
        assert frame["fn"] == "main"
        assert frame["args"] == []

    def test_validate_worker_response_id_mismatch(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_worker_response(
                {"status": "ok", "id": "other"}, "mine"
            )

    def test_validate_worker_response_unknown_status(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_worker_response(
                {"status": "confused", "id": "r"}, "r"
            )


# ----------------------------------------------------------------------
# Circuit breaker (fake clock — no sleeping).
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            cooldown=cooldown,
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=2)
        assert breaker.allow_optimized("fp")
        assert not breaker.record_failure("fp")
        assert breaker.state_of("fp").state == CLOSED
        assert breaker.record_failure("fp")
        assert breaker.state_of("fp").state == OPEN
        assert not breaker.allow_optimized("fp")

    def test_success_resets_the_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure("fp")
        breaker.record_success("fp")
        assert not breaker.record_failure("fp")
        assert breaker.state_of("fp").state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("fp")
        assert not breaker.allow_optimized("fp")
        clock["now"] = 10.1
        # Exactly one probe is admitted; concurrent requests stay degraded.
        assert breaker.allow_optimized("fp")
        assert breaker.state_of("fp").state == HALF_OPEN
        assert not breaker.allow_optimized("fp")

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("fp")
        clock["now"] = 10.1
        assert breaker.allow_optimized("fp")
        breaker.record_success("fp")
        assert breaker.state_of("fp").state == CLOSED
        assert breaker.allow_optimized("fp")

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(threshold=5, cooldown=10.0)
        for _ in range(5):
            breaker.record_failure("fp")
        clock["now"] = 10.1
        assert breaker.allow_optimized("fp")
        # A single probe failure re-opens regardless of the threshold.
        assert breaker.record_failure("fp")
        assert breaker.state_of("fp").state == OPEN
        clock["now"] = 15.0
        assert not breaker.allow_optimized("fp")
        clock["now"] = 20.3
        assert breaker.allow_optimized("fp")

    def test_fingerprints_are_independent(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure("a")
        assert not breaker.allow_optimized("a")
        assert breaker.allow_optimized("b")
        assert breaker.open_fingerprints() == ["a"]

    def test_fingerprint_depends_on_source_and_fn(self):
        assert function_fingerprint("x", "main") != function_fingerprint("y", "main")
        assert function_fingerprint("x", "main") != function_fingerprint("x", "aux")
        assert function_fingerprint("x", "main") == function_fingerprint("x", "main")


# ----------------------------------------------------------------------
# Supervisor end-to-end (real worker subprocesses).
# ----------------------------------------------------------------------


class TestSupervisorService:
    def test_optimized_run(self, supervisor):
        response = supervisor.handle_request({"op": "run", "source": SUM_SOURCE})
        assert response["status"] == "ok"
        assert response["mode"] == "optimized"
        assert response["value"] == 28
        assert response["trap"] is None
        assert response["report"]["eliminated"] > 0
        assert response["gate_reverted"] is False

    def test_trap_preserved_through_optimization(self, supervisor):
        response = supervisor.handle_request({"op": "run", "source": TRAP_SOURCE})
        baseline = degraded_baseline(TRAP_SOURCE)
        assert response["status"] == "ok"
        assert response["trap"] == "BoundsCheckError"
        for field in ("trap", "kind", "index", "length", "check_id"):
            assert response[field] == baseline[field]

    def test_compile_only(self, supervisor):
        response = supervisor.handle_request(
            {"op": "compile", "source": SUM_SOURCE}
        )
        assert response["status"] == "ok"
        assert response["report"]["analyzed"] > 0
        assert "value" not in response

    def test_user_error_is_terminal_not_retried(self, supervisor):
        response = supervisor.handle_request(
            {"op": "run", "source": TYPE_ERROR_SOURCE}
        )
        assert response["status"] == "error"
        assert response["error"] == "TypeCheckError"
        assert supervisor.stats.counters.get("serve.retried", 0) == 0
        # A deterministic user error says nothing about optimizer health.
        fingerprint = function_fingerprint(TYPE_ERROR_SOURCE, "main")
        assert supervisor.breaker.state_of(fingerprint).total_failures == 0

    def test_args_are_forwarded(self, supervisor):
        source = """
fn main(x: int, y: int): int {
  return x * 10 + y;
}
"""
        response = supervisor.handle_request(
            {"op": "run", "source": source, "args": [4, 2]}
        )
        assert response["status"] == "ok"
        assert response["value"] == 42

    def test_status_request(self, supervisor):
        supervisor.handle_request({"op": "run", "source": SUM_SOURCE})
        status = supervisor.handle_request({"op": "status"})
        assert status["op"] == "status"
        assert status["counters"]["serve.optimized"] == 1
        assert status["counters"]["serve.requests"] == 2
        assert len(status["workers"]) == supervisor.config.workers
        assert all(worker["alive"] for worker in status["workers"])

    def test_malformed_request_is_answered_not_fatal(self, supervisor):
        response = supervisor.handle_request({"op": "run"})  # no source
        assert response["status"] == "error"
        assert response["error"] == "ProtocolError"
        response = supervisor.handle_request({"op": "teleport"})
        assert response["status"] == "error"
        # The service still works afterwards.
        ok = supervisor.handle_request({"op": "run", "source": SUM_SOURCE})
        assert ok["status"] == "ok"

    def test_worker_recycled_after_quota(self):
        sup = Supervisor(config=fast_config(workers=1, recycle_after=2))
        try:
            for _ in range(5):
                response = sup.handle_request(
                    {"op": "run", "source": SUM_SOURCE}
                )
                assert response["status"] == "ok"
            assert sup.stats.counters.get("serve.recycled", 0) >= 2
            # The replacement pool is healthy.
            assert all(worker.alive() for worker in sup.pool)
        finally:
            sup.shutdown()


# ----------------------------------------------------------------------
# Chaos fault containment: every registered process-level fault.
# ----------------------------------------------------------------------


class TestChaosFaultContainment:
    @pytest.fixture
    def chaos_supervisor(self):
        sup = Supervisor(
            config=fast_config(
                deadline=2.0,
                retries=0,
                breaker_threshold=100,  # isolate: no breaker interference
                chaos={"rate": 0.0, "seed": 0},
            )
        )
        yield sup
        sup.shutdown()

    @pytest.mark.parametrize("fault", sorted(CHAOS_FAULTS))
    def test_fault_contained(self, chaos_supervisor, fault):
        response = chaos_supervisor.handle_request(
            {"op": "run", "source": SUM_SOURCE, "chaos": fault}
        )
        assert response["status"] == "ok"
        assert response["value"] == 28
        if fault in FATAL_CHAOS_FAULTS:
            # The optimized path cannot survive the fault; service must
            # degrade — with the full dynamic check load intact.
            assert response["mode"] == "degraded"
            baseline = degraded_baseline(SUM_SOURCE)
            assert response["checks"] == baseline["checks"]
            assert response["checks"]["total"] > 0
        else:
            # Benign faults (slow-response) answer correctly in time.
            assert response["mode"] == "optimized"

    def test_chaos_field_ignored_without_chaos_env(self, supervisor):
        """A production server (no chaos config) must not let clients
        fault-inject workers through the request field."""
        response = supervisor.handle_request(
            {"op": "run", "source": SUM_SOURCE, "chaos": "worker-crash"}
        )
        assert response["status"] == "ok"
        assert response["mode"] == "optimized"


# ----------------------------------------------------------------------
# Crash recovery property: random SIGKILLs never lose a request.
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_random_sigkill_mid_request_never_loses_a_request(self):
        """SIGKILL workers at random moments from outside while requests
        flow; every request must still be answered correctly (optimized
        or degraded — never lost, never wrong)."""
        sup = Supervisor(config=fast_config(workers=2, deadline=5.0, retries=1))
        sup.start()
        rng = random.Random(1234)
        stop = threading.Event()

        def killer():
            while not stop.is_set():
                stop.wait(rng.uniform(0.0, 0.03))
                for worker in list(sup.pool):
                    if rng.random() < 0.5:
                        try:
                            os.kill(worker.pid, signal.SIGKILL)
                        except (ProcessLookupError, OSError):
                            pass

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        cases = [
            (SUM_SOURCE, None),
            (TRAP_SOURCE, "BoundsCheckError"),
            (OFF_BY_ONE_SOURCE, "BoundsCheckError"),
        ]
        try:
            for index in range(24):
                source, expected_trap = cases[index % len(cases)]
                response = sup.handle_request({"op": "run", "source": source})
                assert response["status"] == "ok", response
                assert response["mode"] in ("optimized", "degraded"), response
                baseline = degraded_baseline(source)
                assert response["trap"] == baseline["trap"] == expected_trap
                assert response["value"] == baseline["value"]
                if response["trap"] is not None:
                    assert response["index"] == baseline["index"]
                    assert response["length"] == baseline["length"]
        finally:
            stop.set()
            thread.join(timeout=5)
            sup.shutdown()

    def test_degraded_response_byte_identical_to_unoptimized_interpreter(self):
        """The degradation guarantee: a degraded response reproduces the
        unoptimized interpreter exactly — value/trap identity *and* the
        dynamic check/instruction counters (checks intact)."""
        from repro.passes.session import CompilationSession
        from repro.runtime.interpreter import Interpreter

        sup = Supervisor(config=fast_config(workers=1))
        try:
            for source in (SUM_SOURCE, TRAP_SOURCE, OFF_BY_ONE_SOURCE):
                response = sup.handle_request(
                    {"op": "run", "source": source, "optimize": False}
                )
                assert response["status"] == "ok"
                assert response["mode"] == "degraded"

                program = CompilationSession().compile(source, standard_opts=False)
                interp = Interpreter(program, fuel=50_000_000)
                value = trap = None
                try:
                    value = interp.run("main", ()).value
                except Exception as exc:
                    trap = type(exc).__name__
                assert response["value"] == value
                assert response["trap"] == trap
                stats = interp.stats
                assert response["checks"] == {
                    "total": stats.total_checks,
                    "lower": stats.lower_checks,
                    "upper": stats.upper_checks,
                    "speculative": stats.speculative_checks,
                }
                assert response["instructions"] == stats.instructions
        finally:
            sup.shutdown()

    def test_inline_fallback_when_pool_cannot_be_sustained(self, monkeypatch):
        """When even degraded dispatch fails, the supervisor serves the
        request degraded in its own process — the absolute floor."""
        sup = Supervisor(config=fast_config(workers=1, retries=0))
        sup.start()
        try:
            from repro.serve import supervisor as supervisor_module

            def always_dead(self, frame, mode, attempt):
                return ("failure", "simulated: every worker is gone")

            monkeypatch.setattr(
                supervisor_module.Supervisor, "_dispatch", always_dead
            )
            response = sup.handle_request({"op": "run", "source": SUM_SOURCE})
            assert response["status"] == "ok"
            assert response["mode"] == "degraded"
            assert response["inline_fallback"] is True
            assert response["value"] == 28
            assert sup.stats.counters["serve.inline-fallback"] == 1
        finally:
            sup.shutdown()


# ----------------------------------------------------------------------
# Breaker integration: failures open it, open means degraded service,
# cooldown admits a probe that closes it again.
# ----------------------------------------------------------------------


class TestBreakerIntegration:
    def test_breaker_opens_serves_degraded_then_probes_closed(self):
        clock = {"now": 0.0}
        sup = Supervisor(
            config=fast_config(
                workers=1,
                retries=0,
                breaker_threshold=2,
                breaker_cooldown=60.0,
                chaos={"rate": 0.0, "seed": 0},
            ),
            clock=lambda: clock["now"],
        )
        fingerprint = function_fingerprint(SUM_SOURCE, "main")
        try:
            # Two fatally-faulted requests exhaust their retries and open
            # the breaker.
            for _ in range(2):
                response = sup.handle_request(
                    {"op": "run", "source": SUM_SOURCE, "chaos": "worker-crash"}
                )
                assert response["status"] == "ok"
                assert response["mode"] == "degraded"
                assert response["degraded_reason"] == "retries-exhausted"
            assert sup.breaker.state_of(fingerprint).state == OPEN
            assert sup.stats.counters["serve.breaker-opened"] == 1

            # While open: no optimized attempt at all, served degraded
            # with the checked baseline's counters intact.
            before = sup.stats.counters.get("serve.worker-failures", 0)
            response = sup.handle_request({"op": "run", "source": SUM_SOURCE})
            assert response["mode"] == "degraded"
            assert response["degraded_reason"] == "breaker-open"
            assert response["checks"] == degraded_baseline(SUM_SOURCE)["checks"]
            assert sup.stats.counters.get("serve.worker-failures", 0) == before
            assert sup.stats.counters["serve.breaker-open"] == 1

            # After the cooldown the next request is a half-open probe;
            # it succeeds (no fault) and closes the breaker.  The jump
            # clears the worst-case jittered cooldown (60 * 1.1).
            clock["now"] = 67.0
            response = sup.handle_request({"op": "run", "source": SUM_SOURCE})
            assert response["mode"] == "optimized"
            assert sup.breaker.state_of(fingerprint).state == CLOSED
        finally:
            sup.shutdown()


# ----------------------------------------------------------------------
# Serve loop: NDJSON over stdio, drain semantics, telemetry.
# ----------------------------------------------------------------------


class TestServeStdio:
    def run_transcript(self, frames, config=None):
        infile = io.BytesIO(
            b"".join(protocol.encode_frame(frame) for frame in frames)
        )
        outfile = io.BytesIO()
        sup = Supervisor(config=config or fast_config(workers=1))
        telemetry = sup.serve_stdio(infile=infile, outfile=outfile)
        lines = [
            line for line in outfile.getvalue().split(b"\n") if line.strip()
        ]
        return [protocol.decode_frame(line) for line in lines], telemetry, sup

    def test_transcript_roundtrip(self):
        responses, telemetry, _ = self.run_transcript(
            [
                {"op": "run", "id": "a", "source": SUM_SOURCE},
                {"op": "run", "id": "b", "source": TRAP_SOURCE},
                {"op": "status", "id": "c"},
            ]
        )
        assert [response["id"] for response in responses] == ["a", "b", "c"]
        assert responses[0]["value"] == 28
        assert responses[1]["trap"] == "BoundsCheckError"
        assert responses[2]["op"] == "status"
        assert telemetry["counters"]["serve.requests"] == 3
        # The pool was drained on EOF.
        assert telemetry["workers"] == []

    def test_shutdown_op_stops_the_loop(self):
        responses, _, _ = self.run_transcript(
            [
                {"op": "run", "id": "a", "source": SUM_SOURCE},
                {"op": "shutdown", "id": "z"},
                {"op": "run", "id": "never", "source": SUM_SOURCE},
            ]
        )
        assert [response["id"] for response in responses] == ["a", "z"]

    def test_garbage_line_gets_error_response(self):
        infile = io.BytesIO(
            b"this is not json\n"
            + protocol.encode_frame({"op": "run", "id": "a", "source": SUM_SOURCE})
        )
        outfile = io.BytesIO()
        sup = Supervisor(config=fast_config(workers=1))
        sup.serve_stdio(infile=infile, outfile=outfile)
        lines = [
            protocol.decode_frame(line)
            for line in outfile.getvalue().split(b"\n")
            if line.strip()
        ]
        assert lines[0]["status"] == "error"
        assert lines[0]["error"] == "ProtocolError"
        assert lines[1]["id"] == "a"
        assert lines[1]["status"] == "ok"


# ----------------------------------------------------------------------
# The persistent certificate store behind the supervisor.
# ----------------------------------------------------------------------


class TestServeCache:
    def cached_supervisor(self, tmp_path, **overrides):
        config = fast_config(workers=1, cache_dir=str(tmp_path / "cache"))
        for name, value in overrides.items():
            setattr(config, name, value)
        return Supervisor(config=config)

    def test_miss_stores_then_hits(self, tmp_path):
        sup = self.cached_supervisor(tmp_path)
        try:
            first = sup.handle_request(
                {"op": "run", "id": "a", "source": SUM_SOURCE}
            )
            assert first["status"] == "ok" and first["value"] == 28
            assert first["cache"] == "miss-stored"
            second = sup.handle_request(
                {"op": "run", "id": "b", "source": SUM_SOURCE}
            )
            assert second["status"] == "ok" and second["value"] == 28
            assert second["cache"] == "hit"
            assert second["mode"] == "cached"
            status = sup.status_payload()
            assert status["cache"]["invariant_violations"] == 0
            assert status["counters"]["serve.cache.hits"] == 1
        finally:
            sup.shutdown()

    def test_hit_survives_supervisor_restart(self, tmp_path):
        sup = self.cached_supervisor(tmp_path)
        try:
            sup.handle_request({"op": "run", "id": "a", "source": SUM_SOURCE})
        finally:
            sup.shutdown()
        fresh = self.cached_supervisor(tmp_path)
        try:
            response = fresh.handle_request(
                {"op": "run", "id": "b", "source": SUM_SOURCE}
            )
            assert response["cache"] == "hit"
            assert response["value"] == 28
        finally:
            fresh.shutdown()

    def test_corrupted_entry_falls_back_to_fresh_compile(self, tmp_path):
        from repro.robustness.faults import DISK_FAULTS

        sup = self.cached_supervisor(tmp_path)
        try:
            sup.handle_request({"op": "run", "id": "a", "source": SUM_SOURCE})
            fingerprint = next(sup.store.iter_fingerprints())
            DISK_FAULTS["disk-flip-payload-byte"].corrupt(
                sup.store.entry_path(fingerprint)
            )
            response = sup.handle_request(
                {"op": "run", "id": "b", "source": SUM_SOURCE}
            )
            # Correct answer, not served from the corrupted entry.
            assert response["status"] == "ok" and response["value"] == 28
            assert response["cache"] != "hit"
            assert sup.store.counters.get("store.quarantined") == 1
            assert sup.store.invariant_violations() == 0
        finally:
            sup.shutdown()

    def test_trap_identity_preserved_through_cache(self, tmp_path):
        sup = self.cached_supervisor(tmp_path)
        try:
            cold = sup.handle_request(
                {"op": "run", "id": "a", "source": TRAP_SOURCE}
            )
            warm = sup.handle_request(
                {"op": "run", "id": "b", "source": TRAP_SOURCE}
            )
            for field in ("trap", "check_id", "index", "length", "kind"):
                assert warm.get(field) == cold.get(field)
        finally:
            sup.shutdown()

    def test_gate_reverted_results_are_not_cached(self, tmp_path):
        from repro.store.capture import StoreCapture

        capture = StoreCapture()
        capture.mark_uncacheable("differential gate reverted")
        assert capture.build_entry("ff" * 32, None) is None

    def test_unusable_cache_dir_degrades_to_no_caching(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_bytes(b"a file, not a directory")
        sup = Supervisor(
            config=fast_config(workers=1, cache_dir=str(blocker))
        )
        try:
            response = sup.handle_request(
                {"op": "run", "id": "a", "source": SUM_SOURCE}
            )
            assert response["status"] == "ok" and response["value"] == 28
            assert sup.store is None
            assert sup.stats.counters.get("serve.cache.disabled") == 1
        finally:
            sup.shutdown()


class TestBreakerPersistence:
    def test_round_trip_preserves_remaining_cooldown(self):
        now = [1000.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=30.0, clock=lambda: now[0]
        )
        assert breaker.record_failure("fp-open")
        now[0] += 10.0  # 20s of cooldown left
        snapshot = breaker.to_persist()

        later = [5.0]  # a fresh process: the monotonic clock restarted
        restored = CircuitBreaker(
            failure_threshold=1, cooldown=30.0, clock=lambda: later[0]
        )
        assert restored.restore(snapshot) == 1
        assert not restored.allow_optimized("fp-open")
        later[0] += 19.0
        assert not restored.allow_optimized("fp-open")
        later[0] += 2.0  # past the remaining 20s: half-open probe admitted
        assert restored.allow_optimized("fp-open")

    def test_restore_skips_malformed_items(self):
        breaker = CircuitBreaker()
        restored = breaker.restore(
            {
                "states": [
                    {"fingerprint": 42},
                    {"no": "fingerprint"},
                    {"fingerprint": "good", "state": "open",
                     "cooldown_remaining": "NaN-ish"},
                    "not even a dict",
                    {"fingerprint": "fine", "state": "closed"},
                ]
            }
        )
        assert restored == 1
        assert breaker.state_of("fine").state == CLOSED

    def test_restore_tolerates_garbage_payload(self):
        assert CircuitBreaker().restore("garbage") == 0
        assert CircuitBreaker().restore({"states": "nope"}) == 0

    def test_open_breaker_survives_supervisor_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = fast_config(
            workers=1, cache_dir=cache_dir, retries=0, breaker_threshold=1
        )
        sup = Supervisor(config=config)
        try:
            sup.start()
            # One fatal chaos-free failure path: kill the worker via a
            # hang... simpler: drive the breaker directly and persist.
            assert sup.breaker.record_failure("fp-x")
            sup._persist_breakers()
        finally:
            sup.shutdown()
        fresh = Supervisor(config=config)
        try:
            fresh.start()
            assert fresh.stats.counters.get("serve.breakers-restored") == 1
            assert not fresh.breaker.allow_optimized("fp-x")
        finally:
            fresh.shutdown()


class TestWorkerDrain:
    def spawn_worker(self):
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        package_root = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(package_root)
        return subprocess.Popen(
            [_sys.executable, "-m", "repro.serve.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )

    def test_sigterm_while_idle_exits_cleanly(self):
        proc = self.spawn_worker()
        try:
            frame = {"op": "run", "id": "w1", "source": SUM_SOURCE,
                     "fn": "main", "args": [], "mode": "degraded",
                     "fuel": 1_000_000}
            proc.stdin.write(protocol.encode_frame(frame))
            proc.stdin.flush()
            response = protocol.decode_frame(proc.stdout.readline())
            assert response["value"] == 28
            proc.send_signal(signal.SIGTERM)
            # A clean drain, not a signal death (-SIGTERM).
            assert proc.wait(timeout=10) == 0
        finally:
            proc.kill()

    def test_sigterm_mid_request_flushes_the_response_first(self):
        proc = self.spawn_worker()
        try:
            frame = {"op": "run", "id": "w2", "source": SUM_SOURCE,
                     "fn": "main", "args": [], "mode": "optimized",
                     "fuel": 50_000_000}
            proc.stdin.write(protocol.encode_frame(frame))
            proc.stdin.flush()
            # Let the worker pick the frame off stdin, then SIGTERM while
            # the request is in flight: the drain must finish the request
            # and flush the response before exiting.
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            line = proc.stdout.readline()
            assert line, "response lost on SIGTERM"
            response = protocol.decode_frame(line)
            assert response["id"] == "w2" and response["value"] == 28
            assert proc.wait(timeout=10) == 0
        finally:
            proc.kill()


# ----------------------------------------------------------------------
# Jitter: full-jitter retry backoff and de-correlated breaker probes.
# ----------------------------------------------------------------------


class TestJitter:
    def test_backoff_is_seeded_bounded_full_jitter(self):
        sup_a = Supervisor(config=fast_config(jitter_seed=7))
        sup_b = Supervisor(config=fast_config(jitter_seed=7))
        sup_c = Supervisor(config=fast_config(jitter_seed=8))
        try:
            draws_a = [sup_a._backoff(n) for n in range(1, 6)]
            draws_b = [sup_b._backoff(n) for n in range(1, 6)]
            draws_c = [sup_c._backoff(n) for n in range(1, 6)]
            # Same seed replays the same draws; a different seed diverges.
            assert draws_a == draws_b
            assert draws_a != draws_c
            # Full jitter: every draw within [0, min(cap, base * 2^(n-1))].
            config = sup_a.config
            for attempt, value in zip(range(1, 6), draws_a):
                ceiling = min(
                    config.backoff_cap,
                    config.backoff_base * (2 ** (attempt - 1)),
                )
                assert 0.0 <= value <= ceiling
        finally:
            sup_a.shutdown()
            sup_b.shutdown()
            sup_c.shutdown()

    def test_breakers_opened_same_tick_probe_different_ticks(self):
        """Two breakers tripped by the same burst must not re-probe in
        the same tick — full jitter on cooldown expiry de-correlates
        them (the synchronized-retry-storm fix)."""
        import random as random_module

        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown=10.0,
            clock=lambda: clock["now"],
            jitter=0.5,
            rng=random_module.Random(0),
        )
        breaker.record_failure("fp-a")
        breaker.record_failure("fp-b")  # same tick: both open at t=0
        assert breaker.state_of("fp-a").state == OPEN
        assert breaker.state_of("fp-b").state == OPEN

        first_probe = {}
        tick = 0.25
        while len(first_probe) < 2 and clock["now"] < 20.0:
            clock["now"] += tick
            for fp in ("fp-a", "fp-b"):
                if fp not in first_probe and breaker.allow_optimized(fp):
                    first_probe[fp] = clock["now"]
        assert len(first_probe) == 2
        assert first_probe["fp-a"] != first_probe["fp-b"]
        # Both expiries still land inside [cooldown, cooldown * 1.5].
        for when in first_probe.values():
            assert 10.0 <= when <= 15.0 + tick

    def test_zero_jitter_preserves_exact_cooldown(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=10.0, clock=lambda: clock["now"]
        )
        breaker.record_failure("fp")
        clock["now"] = 9.99
        assert not breaker.allow_optimized("fp")
        clock["now"] = 10.0
        assert breaker.allow_optimized("fp")


# ----------------------------------------------------------------------
# Deadline propagation: one effective timer, not two racing ones.
# ----------------------------------------------------------------------


class TestDeadlinePropagation:
    def test_deadline_ms_validation(self):
        for bad in (0, -5, True, "soon", 1.5):
            with pytest.raises(protocol.ProtocolError):
                protocol.validate_request(
                    {"op": "run", "source": "x", "deadline_ms": bad}
                )
        frame = protocol.validate_request(
            {"op": "run", "source": "x", "deadline_ms": 1500}
        )
        assert frame["deadline_ms"] == 1500

    def test_request_deadline_bounds_supervisor_and_worker(self, monkeypatch):
        """Regression for the deadline-layering bug: a request deadline
        *shorter* than the supervisor default must become the effective
        pipe timeout AND ride the wire as the worker's budget — the
        minimum of the two layers, not a race between them."""
        from repro.serve.supervisor import WorkerHandle

        captured = {}
        original_send = WorkerHandle.send
        original_read = WorkerHandle.read_frame

        def spy_send(self, frame):
            if frame.get("op") == "run":
                captured["wire"] = dict(frame)
            return original_send(self, frame)

        def spy_read(self, timeout, clock=time.monotonic):
            captured.setdefault("timeouts", []).append(timeout)
            return original_read(self, timeout, clock)

        monkeypatch.setattr(WorkerHandle, "send", spy_send)
        monkeypatch.setattr(WorkerHandle, "read_frame", spy_read)

        sup = Supervisor(config=fast_config(deadline=10.0, retries=0))
        try:
            response = sup.handle_request(
                {"op": "run", "source": SUM_SOURCE, "deadline_ms": 2000}
            )
            assert response["status"] == "ok"
            assert response["value"] == 28
        finally:
            sup.shutdown()
        # The pipe read was bounded by the request budget, not the 10s
        # supervisor default, and the worker saw the same number.
        assert captured["timeouts"][0] <= 2.0
        assert 0 < captured["wire"]["deadline_budget"] <= 2.0
        assert captured["wire"]["deadline_budget"] == pytest.approx(
            captured["timeouts"][0]
        )

    def test_longer_request_deadline_keeps_supervisor_default(self, monkeypatch):
        from repro.serve.supervisor import WorkerHandle

        captured = {}
        original_send = WorkerHandle.send

        def spy_send(self, frame):
            if frame.get("op") == "run":
                captured["wire"] = dict(frame)
            return original_send(self, frame)

        monkeypatch.setattr(WorkerHandle, "send", spy_send)
        sup = Supervisor(config=fast_config(deadline=5.0, retries=0))
        try:
            response = sup.handle_request(
                {"op": "run", "source": SUM_SOURCE, "deadline_ms": 60_000}
            )
            assert response["status"] == "ok"
        finally:
            sup.shutdown()
        # A generous caller budget never *extends* the per-attempt
        # deadline and the worker gets no budget field at all.
        assert "deadline_budget" not in captured["wire"]

    def test_worker_hard_deadline_contains_budget_blowout(self):
        """The worker-side backstop: a request whose budget is tiny is
        reported as a retryable failure, never a hang."""
        from repro.serve import worker as worker_module

        big_loop = """
fn main(): int {
  let a: int[] = new int[200000];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""
        response = worker_module._serve_request(
            {"op": "run", "id": "tiny", "source": big_loop, "fn": "main",
             "args": [], "mode": "degraded", "deadline_budget": 0.001},
            None, False, 0,
        )
        assert response["status"] == "failure"
        assert response["reason"] == "deadline"

    def test_worker_ignores_garbage_budgets(self):
        from repro.serve import worker as worker_module

        for garbage in (True, "soon", -1, 0, None):
            response = worker_module._serve_request(
                {"op": "run", "id": "g", "source": SUM_SOURCE, "fn": "main",
                 "args": [], "mode": "degraded", "deadline_budget": garbage},
                None, False, 0,
            )
            assert response["status"] == "ok"
            assert response["value"] == 28


# ----------------------------------------------------------------------
# Overload integration: admission, shedding, and the response invariant.
# ----------------------------------------------------------------------


class StubDispatch:
    """Replaces ``Supervisor._dispatch``: instant success, no workers."""

    def __init__(self, clock, tick=0.05):
        self.clock = clock
        self.tick = tick
        self.dispatched = []

    def __call__(self, sup, frame, mode, attempt, wire_extra=None):
        self.dispatched.append(frame["id"])
        self.clock["now"] += self.tick
        return (
            "response",
            {"id": frame["id"], "status": "ok", "op": frame["op"],
             "mode": "optimized" if mode == "optimized" else "degraded",
             "value": 0},
        )


class TestOverloadIntegration:
    def make_supervisor(self, monkeypatch, clock, **overrides):
        from repro.serve import supervisor as supervisor_module

        stub = StubDispatch(clock)
        monkeypatch.setattr(
            supervisor_module.Supervisor, "_dispatch",
            lambda sup, *a, **kw: stub(sup, *a, **kw),
        )
        sup = Supervisor(
            config=fast_config(**overrides), clock=lambda: clock["now"]
        )
        sup.start = lambda: None  # no worker pool under the stub
        return sup, stub

    def test_queue_full_sheds_fast_with_retry_after(self, monkeypatch):
        clock = {"now": 0.0}
        sup, stub = self.make_supervisor(
            monkeypatch, clock, queue_capacity=2
        )
        assert sup.submit({"op": "run", "source": SUM_SOURCE}) is None
        assert sup.submit({"op": "run", "source": SUM_SOURCE}) is None
        shed = sup.submit({"op": "run", "source": SUM_SOURCE})
        assert shed["status"] == "shed"
        assert shed["reason"] == "queue-full"
        assert shed["retry_after"] > 0
        assert isinstance(shed["degrade_level"], int)
        assert stub.dispatched == []  # rejected before any worker touch
        # The two queued requests still drain normally.
        results = sup.process_queue()
        assert [r["status"] for _, r in results] == ["ok", "ok"]

    def test_every_admitted_request_gets_exactly_one_response(
        self, monkeypatch
    ):
        """The response invariant, property-style: a seeded mix of
        arrivals, deadlines, and queue pressure — every submitted frame
        is answered exactly once, and an expired queued request is shed
        without consuming a worker dispatch."""
        clock = {"now": 0.0}
        sup, stub = self.make_supervisor(
            monkeypatch, clock, queue_capacity=8
        )
        rng = random.Random(42)
        responses = {}

        def record(frame, response):
            key = frame["id"]
            assert key not in responses, f"duplicate response for {key}"
            responses[key] = response

        submitted = []
        for i in range(60):
            frame = {"op": "run", "id": f"p{i}", "source": SUM_SOURCE}
            if rng.random() < 0.4:
                frame["deadline_ms"] = rng.randrange(50, 400)
            submitted.append(frame["id"])
            immediate = sup.submit(dict(frame))
            if immediate is not None:
                record(frame, immediate)
            # Occasionally stall long enough for queued deadlines to
            # expire, then serve a couple of requests.
            if rng.random() < 0.3:
                clock["now"] += rng.uniform(0.1, 0.6)
            for _ in range(rng.randrange(0, 3)):
                for served_frame, response in sup.process_one():
                    record(served_frame, response)
        for served_frame, response in sup.process_queue():
            record(served_frame, response)

        assert sorted(responses) == sorted(submitted)
        shed_ids = {
            key for key, r in responses.items() if r["status"] == "shed"
        }
        expired_ids = {
            key for key, r in responses.items()
            if r.get("reason") == "deadline-expired"
        }
        assert expired_ids, "schedule never expired a queued deadline"
        # A deadline-expired entry was never dispatched to a worker.
        assert expired_ids.isdisjoint(set(stub.dispatched))
        # Everything not shed was dispatched exactly once.
        served_ids = set(submitted) - shed_ids
        assert sorted(stub.dispatched) == sorted(served_ids)

    def test_degrade_level_tags_every_response(self, monkeypatch):
        clock = {"now": 0.0}
        sup, stub = self.make_supervisor(monkeypatch, clock)
        sup.submit({"op": "run", "id": "lvl", "source": SUM_SOURCE})
        ((_, response),) = sup.process_queue()
        assert response["degrade_level"] == 0

    def test_ladder_level_two_serves_degraded(self, monkeypatch):
        clock = {"now": 0.0}
        sup, stub = self.make_supervisor(monkeypatch, clock)
        sup.overload.ladder.observe(3.0, now=0.0)  # past the 2.0 mark
        sup.submit({"op": "run", "id": "deg", "source": SUM_SOURCE})
        ((_, response),) = sup.process_queue()
        assert response["mode"] == "degraded"
        assert response["degrade_level"] == 2

    def test_shed_queued_answers_everything_on_drain(self, monkeypatch):
        clock = {"now": 0.0}
        sup, stub = self.make_supervisor(monkeypatch, clock, queue_capacity=8)
        for i in range(4):
            sup.submit({"op": "run", "id": f"d{i}", "source": SUM_SOURCE})
        drained = sup.shed_queued("shutting-down")
        assert len(drained) == 4
        assert all(r["status"] == "shed" for _, r in drained)
        assert all(r["reason"] == "shutting-down" for _, r in drained)
        assert sup.pending() == 0

    def test_status_payload_carries_the_overload_block(self):
        sup = Supervisor(config=fast_config())
        try:
            payload = sup.handle_request({"op": "status"})
        finally:
            sup.shutdown()
        overload = payload["overload"]
        assert overload["enabled"] is True
        assert overload["level"] == 0
        assert overload["queue_capacity"] == sup.config.queue_capacity
