"""Cross-feature integration: optimizations composed end to end."""

import pytest

from repro.baselines.loop_versioning import version_program_loops
from repro.core.abcd import ABCDConfig, optimize_program
from repro.core.extensions import merge_program_unsigned_checks
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_program
from repro.opt import run_standard_pipeline
from repro.opt.inline import inline_program
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.codegen import compile_to_python
from repro.runtime.profiler import collect_profile
from repro.ssa.essa import construct_essa

SRC = """
fn get(a: int[], i: int): int {
  if (i >= 0 && i < len(a)) {
    return a[i];
  }
  return 0;
}
fn accumulate(a: int[], probe: int, rounds: int): int {
  let acc: int = 0;
  let r: int = 0;
  while (r < rounds) {
    acc = acc + a[probe];
    r = r + 1;
  }
  return acc;
}
fn main(): int {
  let a: int[] = new int[32];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i * 3 - 7;
  }
  let total: int = 0;
  for (let q: int = 0; q < 40; q = q + 1) {
    total = total + get(a, q - 4);
  }
  total = total + accumulate(a, 11, 25);
  return total;
}
"""


def full_pipeline(source: str, inline: bool, pre: bool, merge: bool):
    """inline -> e-SSA -> std opts -> ABCD(+PRE) -> unsigned merge."""
    program = compile_source(source, inline=inline)
    profile = collect_profile(program, "main") if pre else None
    optimize_program(program, ABCDConfig(pre=pre), profile)
    if merge:
        merge_program_unsigned_checks(program)
    verify_program(program)
    return program


@pytest.mark.parametrize("inline", [False, True])
@pytest.mark.parametrize("pre", [False, True])
@pytest.mark.parametrize("merge", [False, True])
def test_all_pipeline_combinations_preserve_behaviour(inline, pre, merge):
    baseline = compile_source(SRC)
    expected = run(baseline, "main")
    program = full_pipeline(SRC, inline, pre, merge)
    result = run(program, "main")
    assert result.value == expected.value
    survived = result.stats.total_checks + result.stats.speculative_checks
    assert survived <= expected.stats.total_checks


def test_full_stack_through_compiled_tier():
    program = full_pipeline(SRC, inline=True, pre=True, merge=True)
    interpreted = run(clone_program(program), "main")
    compiled = compile_to_python(program).run("main")
    assert compiled.value == interpreted.value
    assert compiled.stats.total_checks == interpreted.stats.total_checks
    assert compiled.stats.cycles == interpreted.stats.cycles


def test_versioning_then_abcd_composes():
    """Versioning first, ABCD second: ABCD should clean up the checks the
    versioning tests make provable in the fast path (the version test's
    branch π bounds the loop)."""
    ast = parse_source(SRC)
    info = check_program(ast)
    program = lower_program(ast, info)
    version_program_loops(program)
    for fn in program.functions.values():
        construct_essa(fn)
        run_standard_pipeline(fn)
    baseline_value = run(compile_source(SRC), "main").value
    before = run(clone_program(program), "main")
    optimize_program(program, ABCDConfig())
    verify_program(program)
    after = run(program, "main")
    assert after.value == before.value == baseline_value
    assert after.stats.total_checks <= before.stats.total_checks


def test_inline_then_pre_hoists_more():
    """After inlining, accumulate()'s loop-invariant a[probe] check sits in
    main where probe is the constant 11 — fully provable without PRE."""
    plain = full_pipeline(SRC, inline=False, pre=False, merge=False)
    inlined = full_pipeline(SRC, inline=True, pre=False, merge=False)
    plain_run = run(plain, "main")
    inlined_run = run(inlined, "main")
    assert inlined_run.stats.total_checks <= plain_run.stats.total_checks


def test_report_scopes_follow_structure():
    program = compile_source(SRC)
    report = optimize_program(program, ABCDConfig())
    for analysis in report.analyses:
        if analysis.eliminated:
            assert analysis.scope in ("local", "global")
        else:
            assert analysis.scope is None
        assert analysis.steps >= 1
        assert analysis.seconds >= 0.0
