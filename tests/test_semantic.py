"""Type checker and scoping tests."""

import pytest

from repro.errors import TypeCheckError
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.frontend.types import BOOL, INT, INT_ARRAY


def check(source: str):
    return check_program(parse_source(source))


def check_fn(body: str, header: str = "fn f(): void"):
    return check(f"{header} {{ {body} }}")


def expect_error(source: str, fragment: str):
    with pytest.raises(TypeCheckError) as excinfo:
        check(source)
    assert fragment in str(excinfo.value)


class TestDeclarations:
    def test_duplicate_function(self):
        expect_error("fn f(): void { } fn f(): void { }", "duplicate function")

    def test_duplicate_parameter(self):
        expect_error("fn f(a: int, a: int): void { }", "duplicate parameter")

    def test_variable_redeclaration_rejected(self):
        expect_error(
            "fn f(): void { let x: int = 1; let x: int = 2; }",
            "already declared",
        )

    def test_shadowing_in_nested_block_rejected(self):
        expect_error(
            "fn f(): void { let x: int = 1; if (true) { let x: int = 2; } }",
            "already declared",
        )

    def test_sequential_scopes_allow_same_name(self):
        # The first loop's `i` goes out of scope before the second.
        check_fn(
            "for (let i: int = 0; i < 3; i = i + 1) { } "
            "for (let i: int = 0; i < 3; i = i + 1) { }"
        )

    def test_param_shadowing_rejected(self):
        expect_error(
            "fn f(x: int): void { let x: int = 1; }", "already declared"
        )


class TestExpressionTypes:
    def test_arith_requires_int(self):
        expect_error("fn f(): void { let x: int = true + 1; }", "'+'")

    def test_comparison_yields_bool(self):
        check_fn("let b: bool = 1 < 2;")

    def test_comparison_requires_int(self):
        expect_error("fn f(): void { let b: bool = true < false; }", "'<'")

    def test_eq_on_bools_allowed(self):
        check_fn("let b: bool = true == false;")

    def test_eq_on_arrays_rejected(self):
        expect_error(
            "fn f(a: int[], b: int[]): void { let c: bool = a == b; }", "'=='"
        )

    def test_logical_ops_require_bool(self):
        expect_error("fn f(): void { let b: bool = 1 && true; }", "'&&'")

    def test_not_requires_bool(self):
        expect_error("fn f(): void { let b: bool = !3; }", "'!'")

    def test_unary_minus_requires_int(self):
        expect_error("fn f(): void { let x: int = -true; }", "unary '-'")

    def test_index_requires_array(self):
        expect_error("fn f(x: int): void { let v: int = x[0]; }", "non-array")

    def test_index_must_be_int(self):
        expect_error(
            "fn f(a: int[]): void { let v: int = a[true]; }", "index must be int"
        )

    def test_len_requires_array(self):
        expect_error("fn f(x: int): void { let n: int = len(x); }", "len()")

    def test_new_array_length_must_be_int(self):
        expect_error(
            "fn f(): void { let a: int[] = new int[true]; }", "length must be int"
        )

    def test_expr_types_recorded(self):
        info = check("fn f(a: int[]): void { let v: int = a[0]; let b: bool = v < 1; }")
        recorded = set(info.expr_types.values())
        assert INT in recorded and BOOL in recorded and INT_ARRAY in recorded


class TestStatements:
    def test_let_type_mismatch(self):
        expect_error("fn f(): void { let x: int = true; }", "cannot initialize")

    def test_assign_undeclared(self):
        expect_error("fn f(): void { x = 1; }", "undeclared variable")

    def test_assign_type_mismatch(self):
        expect_error(
            "fn f(): void { let x: int = 1; x = true; }", "cannot assign"
        )

    def test_use_before_declaration(self):
        expect_error("fn f(): void { let y: int = x; let x: int = 1; }", "undeclared")

    def test_condition_must_be_bool(self):
        expect_error("fn f(): void { if (1) { } }", "must be bool")

    def test_while_condition_must_be_bool(self):
        expect_error("fn f(): void { while (1) { } }", "must be bool")

    def test_store_value_must_be_int(self):
        expect_error(
            "fn f(a: int[]): void { a[0] = true; }", "element must be int"
        )

    def test_break_outside_loop(self):
        expect_error("fn f(): void { break; }", "'break'")

    def test_continue_outside_loop(self):
        expect_error("fn f(): void { continue; }", "'continue'")

    def test_let_scoped_to_block(self):
        expect_error(
            "fn f(): void { if (true) { let x: int = 1; } x = 2; }", "undeclared"
        )


class TestCalls:
    def test_unknown_callee(self):
        expect_error("fn f(): void { g(); }", "unknown function")

    def test_arity_mismatch(self):
        expect_error(
            "fn g(a: int): void { } fn f(): void { g(); }", "expects 1 argument"
        )

    def test_argument_type_mismatch(self):
        expect_error(
            "fn g(a: int): void { } fn f(): void { g(true); }", "argument to 'g'"
        )

    def test_void_call_as_value_rejected(self):
        expect_error(
            "fn g(): void { } fn f(): void { let x: int = g(); }",
            "used as a value",
        )

    def test_forward_reference_allowed(self):
        check("fn f(): int { return g(); } fn g(): int { return 1; }")

    def test_recursion_allowed(self):
        check("fn f(n: int): int { if (n <= 0) { return 0; } return f(n - 1); }")


class TestReturnPaths:
    def test_missing_return_rejected(self):
        expect_error("fn f(): int { let x: int = 1; }", "without returning")

    def test_return_in_both_branches_accepted(self):
        check("fn f(c: bool): int { if (c) { return 1; } else { return 2; } }")

    def test_return_only_in_then_rejected(self):
        expect_error("fn f(c: bool): int { if (c) { return 1; } }", "without returning")

    def test_infinite_loop_counts_as_return(self):
        check("fn f(): int { while (true) { } }")

    def test_infinite_loop_with_break_rejected(self):
        expect_error(
            "fn f(c: bool): int { while (true) { if (c) { break; } } }",
            "without returning",
        )

    def test_void_function_needs_no_return(self):
        check("fn f(): void { let x: int = 1; }")

    def test_return_value_from_void_rejected(self):
        expect_error("fn f(): void { return 1; }", "void function")

    def test_bare_return_from_int_rejected(self):
        expect_error("fn f(): int { return; }", "return without value")

    def test_return_type_mismatch(self):
        expect_error("fn f(): int { return true; }", "return type mismatch")

    def test_var_types_recorded(self):
        info = check("fn f(a: int[]): void { let n: int = len(a); }")
        assert info.var_type("f", "a") is INT_ARRAY
        assert info.var_type("f", "n") is INT
