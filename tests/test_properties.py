"""Property-based tests (hypothesis) for the core invariants.

1. **Solver soundness**: on random φ-invariant inequality graphs,
   ``demand_prove`` never claims a bound the exact constraint-system
   semantics does not entail.
2. **Fixpoint conservativeness**: the batch fixpoint distance is always an
   upper approximation of the exact distance.
3. **Optimization soundness**: randomly generated MiniJ programs behave
   identically (value or exception, including the failing check's
   identity) before and after ABCD — with and without PRE — and after the
   range-analysis baseline and SSA destruction.
4. **VM arithmetic**: Java-style division/modulo identities.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import compute_distances, exact_distance
from repro.core.graph import InequalityGraph, const_node, len_node, var_node
from repro.core.solver import demand_prove
from repro.errors import MiniJRuntimeError
from repro.pipeline import abcd, clone_program, compile_source, run
from repro.runtime.profiler import collect_profile
from repro.runtime.values import minij_div, minij_mod

# ----------------------------------------------------------------------
# Random inequality graphs.
# ----------------------------------------------------------------------


@st.composite
def inequality_graphs(draw, acyclic=False):
    """A random graph satisfying the structural invariant that every cycle
    contains a φ vertex: non-φ vertices only receive in-edges from
    strictly lower-indexed vertices (plus the source), while φ vertices may
    receive arbitrary in-edges (including back edges).

    ``acyclic=True`` restricts φ in-edges to forward edges as well.  The
    exact sup-semantics oracle (``exact_distance``) is only the right
    referee on DAGs: on cyclic graphs the paper's semantics is *inductive
    over loop iterations* — a φ-broken cycle of weight <= 0 preserves the
    outside bound (base case + step), even though the pure
    difference-constraint system would leave the vertex unconstrained for
    a weight-0 cycle (``v <= max(o, v)`` is a tautology).  Cyclic behaviour
    is covered by the paper-example unit tests and, for real soundness, by
    the differential program properties below.
    """
    direction = draw(st.sampled_from(["upper", "lower"]))
    graph = InequalityGraph(direction)
    n_vars = draw(st.integers(2, 7))
    nodes = [len_node("A")] + [var_node(f"v{i}") for i in range(n_vars)]
    const_values = draw(st.lists(st.integers(-3, 8), max_size=2, unique=True))
    nodes.extend(const_node(c) for c in const_values)

    phi_indices = draw(
        st.sets(st.integers(1, len(nodes) - 1), max_size=3)
    )
    # Constants and the length literal are never φ; only var vertices.
    phis = {
        nodes[i]
        for i in phi_indices
        if nodes[i].kind == "var"
    }
    for phi in phis:
        graph.mark_phi(phi)

    # Random edges target variable vertices only: program-derived graphs
    # put in-edges on constants solely via (consistent) allocation facts,
    # and a random edge into a constant could encode a contradiction
    # (an infeasible system proves everything vacuously).
    var_indices = [i for i, n in enumerate(nodes) if n.kind == "var"]
    n_edges = draw(st.integers(1, 14))
    for _ in range(n_edges):
        target_index = draw(st.sampled_from(var_indices))
        target = nodes[target_index]
        if target in phis and not acyclic:
            source_index = draw(st.integers(0, len(nodes) - 1))
        else:
            source_index = draw(st.integers(0, target_index - 1))
        source = nodes[source_index]
        if source == target:
            continue
        weight = draw(st.integers(-3, 3))
        graph.add_edge(source, target, weight)
    target = draw(st.sampled_from(nodes[1:]))
    budget = draw(st.integers(-4, 4))
    source = len_node("A") if direction == "upper" else const_node(0)
    return graph, source, target, budget


@settings(max_examples=300, deadline=None)
@given(inequality_graphs(acyclic=True))
def test_solver_sound_against_exact_semantics(case):
    graph, source, target, budget = case
    outcome = demand_prove(graph, source, target, budget)
    if outcome.proven:
        exact = exact_distance(graph, source, target)
        assert exact <= budget, (
            f"solver proved {target} - {source} <= {budget} but the exact "
            f"distance is {exact}"
        )


@settings(max_examples=300, deadline=None)
@given(inequality_graphs(acyclic=True))
def test_solver_complete_on_dags(case):
    """On acyclic graphs the demand solver is also complete: whatever the
    exact semantics entails, it proves."""
    graph, source, target, budget = case
    exact = exact_distance(graph, source, target)
    if exact == -math.inf:
        return  # infeasible system: vacuous entailment, nothing to prove
    if exact <= budget:
        assert demand_prove(graph, source, target, budget).proven


@settings(max_examples=200, deadline=None)
@given(inequality_graphs())
def test_solver_terminates_and_is_deterministic_on_cyclic_graphs(case):
    graph, source, target, budget = case
    first = demand_prove(graph, source, target, budget)
    second = demand_prove(graph, source, target, budget)
    assert first.result is second.result


@settings(max_examples=200, deadline=None)
@given(inequality_graphs(acyclic=True))
def test_fixpoint_upper_approximates_exact(case):
    graph, source, target, budget = case
    del budget
    exact = exact_distance(graph, source, target)
    approx = compute_distances(graph, source, extra_nodes=[target]).get(
        target, math.inf
    )
    assert approx >= exact


@settings(max_examples=200, deadline=None)
@given(inequality_graphs(acyclic=True))
def test_fixpoint_prove_implies_solver_semantics_sound(case):
    """If the batch fixpoint proves a bound, the exact semantics entails it
    (the batch solver is also usable for elimination)."""
    graph, source, target, budget = case
    approx = compute_distances(graph, source, extra_nodes=[target]).get(
        target, math.inf
    )
    if approx <= budget:
        assert exact_distance(graph, source, target) <= budget


# ----------------------------------------------------------------------
# Random MiniJ programs.
# ----------------------------------------------------------------------

_KERNELS = [
    # (template, needs_second_array)
    ("for (let i{k}: int = 0; i{k} < len(a); i{k} = i{k} + 1) {{ s = s + a[i{k}]; }}", False),
    ("for (let i{k}: int = 0; i{k} < len(a); i{k} = i{k} + 1) {{ a[i{k}] = i{k} * {m}; }}", False),
    ("for (let i{k}: int = 0; i{k} < len(a) - 1; i{k} = i{k} + 1) {{ s = s + a[i{k} + 1]; }}", False),
    ("let j{k}: int = len(a) - 1; while (j{k} >= 0) {{ s = s + a[j{k}]; j{k} = j{k} - 1; }}", False),
    ("if ({x} >= 0 && {x} < len(a)) {{ s = s + a[{x}]; }}", False),
    ("s = s + a[{x}];", False),  # may raise: exercised differentially
    ("let t{k}: int = 0; while (t{k} < {m}) {{ s = s + a[{p}]; t{k} = t{k} + 1; }}", False),
    ("for (let i{k}: int = 0; i{k} < len(b) && i{k} < len(a); i{k} = i{k} + 1) {{ b[i{k}] = a[i{k}]; }}", True),
    ("let u{k}: int = {m}; while (u{k} < len(a)) {{ s = s + a[u{k}]; u{k} = u{k} + {step}; }}", False),
]


@st.composite
def minij_programs(draw):
    size_a = draw(st.integers(1, 12))
    size_b = draw(st.integers(1, 12))
    n_stmts = draw(st.integers(1, 4))
    statements = []
    for k in range(n_stmts):
        template, _ = draw(st.sampled_from(_KERNELS))
        statements.append(
            template.format(
                k=k,
                m=draw(st.integers(0, 6)),
                x=draw(st.integers(-2, 14)),
                p=draw(st.integers(0, 13)),
                step=draw(st.integers(1, 3)),
            )
        )
    body = "\n  ".join(statements)
    return f"""
fn main(): int {{
  let a: int[] = new int[{size_a}];
  let b: int[] = new int[{size_b}];
  let s: int = 0;
  for (let w: int = 0; w < len(a); w = w + 1) {{
    a[w] = w * 3 - 5;
  }}
  {body}
  return s;
}}
"""


def observe(program):
    """Run to an observable outcome: value, or exception identity."""
    try:
        result = run(program, "main", fuel=2_000_000)
        return ("value", result.value)
    except MiniJRuntimeError as exc:
        check_id = getattr(exc, "check_id", None)
        return ("exception", type(exc).__name__, check_id)


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(minij_programs(), st.booleans())
def test_abcd_preserves_behaviour(source, use_pre):
    program = compile_source(source)
    baseline = clone_program(program)
    profile = None
    if use_pre:
        try:
            profile = collect_profile(program, "main", fuel=2_000_000)
        except MiniJRuntimeError:
            profile = None  # training run raised: skip PRE, plain ABCD
    abcd(program, pre=profile is not None, profile=profile)
    assert observe(program) == observe(baseline)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(minij_programs())
def test_abcd_never_unsound_unchecked_access(source):
    """The interpreter hard-fails (UNSOUND) on any unchecked out-of-range
    access; optimized runs must never trip it."""
    program = compile_source(source)
    abcd(program)
    outcome = observe(program)
    if outcome[0] == "exception":
        assert outcome[1] != "MiniJRuntimeError" or "UNSOUND" not in outcome[1]


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(minij_programs())
def test_range_baseline_preserves_behaviour(source):
    from repro.baselines.range_analysis import eliminate_program_with_ranges

    program = compile_source(source, standard_opts=False)
    baseline = clone_program(program)
    eliminate_program_with_ranges(program)
    assert observe(program) == observe(baseline)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(minij_programs())
def test_ssa_destruction_preserves_behaviour(source):
    from repro.ssa.destruct import destruct_ssa

    program = compile_source(source)
    baseline = clone_program(program)
    abcd(program)
    for fn in program.functions.values():
        destruct_ssa(fn)
    assert observe(program) == observe(baseline)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(minij_programs())
def test_compiled_programs_verify(source):
    from repro.ir.verifier import verify_program

    program = compile_source(source)
    verify_program(program)
    abcd(program)
    verify_program(program)


# ----------------------------------------------------------------------
# VM arithmetic.
# ----------------------------------------------------------------------


@given(st.integers(-1000, 1000), st.integers(-1000, 1000).filter(lambda x: x != 0))
def test_div_mod_euclid_identity(lhs, rhs):
    assert minij_div(lhs, rhs) * rhs + minij_mod(lhs, rhs) == lhs


@given(st.integers(-1000, 1000), st.integers(1, 1000))
def test_mod_magnitude_bound(lhs, rhs):
    assert abs(minij_mod(lhs, rhs)) < rhs


@given(st.integers(-1000, 1000), st.integers(-1000, 1000).filter(lambda x: x != 0))
def test_div_truncates_toward_zero(lhs, rhs):
    expected = int(lhs / rhs)  # float division truncates toward zero
    assert minij_div(lhs, rhs) == expected
