"""Corpus integration tests: every benchmark compiles, runs, verifies, and
is behaviour-preserving under the full optimization pipeline."""

import pytest

from repro.bench.corpus import CORPUS, get, names
from repro.bench.harness import run_benchmark
from repro.ir.verifier import verify_program
from repro.pipeline import compile_source, run

CORPUS_NAMES = [p.name for p in CORPUS]


class TestCorpusRegistry:
    def test_fifteen_programs(self):
        assert len(CORPUS) == 15

    def test_categories(self):
        assert len(names("spec")) == 5
        assert len(names("symantec")) == 7
        assert len(names("other")) == 3

    def test_lookup(self):
        assert get("Sieve").filename == "sieve.mj"
        with pytest.raises(KeyError):
            get("nope")

    def test_sources_exist(self):
        for program in CORPUS:
            assert program.path.exists(), program.name
            assert program.source().strip()


@pytest.mark.parametrize("name", CORPUS_NAMES)
class TestCorpusPrograms:
    def test_compiles_and_verifies(self, name):
        program = compile_source(get(name).source())
        verify_program(program)

    def test_runs_with_checks(self, name):
        program = compile_source(get(name).source())
        result = run(program, "main", fuel=100_000_000)
        assert result.stats.total_checks > 0
        assert result.value is not None

    def test_abcd_preserves_behaviour_and_removes_checks(self, name):
        result = run_benchmark(get(name), pre=True)
        assert result.behaviour_preserved, name
        assert result.report.analyzed > 0
        # Every corpus program has at least some removable checks.
        assert result.report.eliminated_count() > 0
        survived = (
            result.opt_stats.total_checks + result.opt_stats.speculative_checks
        )
        assert survived < result.base_stats.total_checks


class TestCorpusShape:
    """Qualitative Figure-6 expectations that must stay stable."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            name: run_benchmark(get(name), pre=True)
            for name in ("biDirBubbleSort", "Array", "Sieve", "Hanoi", "bytemark")
        }

    def test_running_example_near_total(self, results):
        assert results["biDirBubbleSort"].dynamic_upper_removed_fraction > 0.95

    def test_array_micro_near_total(self, results):
        assert results["Array"].dynamic_upper_removed_fraction > 0.95

    def test_sieve_near_total(self, results):
        assert results["Sieve"].dynamic_upper_removed_fraction > 0.9

    def test_hanoi_limited_by_interprocedural_params(self, results):
        # Paper: Hanoi's residue is "not optimizable with intraprocedural
        # analysis".
        assert results["Hanoi"].dynamic_upper_removed_fraction < 0.7

    def test_bytemark_has_partial_redundancy(self, results):
        assert results["bytemark"].report.pre_transformed >= 1
        assert results["bytemark"].static_partially_redundant_fraction > 0.05
