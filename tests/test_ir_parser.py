"""Textual IR parser tests: printer/parser round-trips."""

import pytest

from repro.bench.corpus import get
from repro.errors import ParseError
from repro.ir.parser import parse_function, parse_ir_program
from repro.ir.printer import format_function, format_program
from repro.ir.verifier import verify_function, verify_program
from repro.pipeline import abcd, compile_source, run
from repro.runtime.interpreter import run_program


def roundtrip_function(fn):
    text = format_function(fn)
    parsed = parse_function(text)
    assert format_function(parsed) == text
    return parsed


class TestRoundTrip:
    def test_simple_function(self):
        program = compile_source("fn main(): int { return 2 + 3; }")
        roundtrip_function(program.function("main"))

    def test_loop_with_checks(self, bubble_source):
        program = compile_source(bubble_source)
        for fn in program.functions.values():
            parsed = roundtrip_function(fn)
            assert parsed.ssa_form == "essa"
            verify_function(parsed)

    def test_whole_program(self, bubble_source):
        program = compile_source(bubble_source)
        text = format_program(program)
        parsed = parse_ir_program(text)
        assert format_program(parsed) == text
        verify_program(parsed)

    def test_parsed_program_executes_identically(self, bubble_source):
        program = compile_source(bubble_source)
        parsed = parse_ir_program(format_program(program))
        original = run_program(program, "main")
        reparsed = run_program(parsed, "main")
        assert original.value == reparsed.value
        assert original.stats.total_checks == reparsed.stats.total_checks

    def test_optimized_program_roundtrips(self, bubble_source):
        program = compile_source(bubble_source)
        abcd(program)
        parsed = parse_ir_program(format_program(program))
        assert run_program(parsed, "main").value == run_program(program, "main").value

    def test_pre_artifacts_roundtrip(self):
        src = """
fn kernel(data: int[], probe: int, iters: int): int {
  let acc: int = 0;
  let iter: int = 0;
  while (iter < iters) {
    acc = acc + data[probe];
    iter = iter + 1;
  }
  return acc;
}
fn main(): int {
  let data: int[] = new int[16];
  return kernel(data, 5, 30);
}
"""
        from repro.runtime.profiler import collect_profile

        program = compile_source(src)
        profile = collect_profile(program, "main")
        abcd(program, pre=True, profile=profile)
        text = format_program(program)
        assert "speculate" in text and "guard=" in text
        parsed = parse_ir_program(text)
        assert format_program(parsed) == text
        assert run_program(parsed, "main").value == 0

    def test_unsigned_checks_roundtrip(self):
        from repro.core.extensions import merge_program_unsigned_checks

        src = """
fn probe(a: int[], x: int): int {
  let idx: int = x / 2;
  return a[idx];
}
fn main(): int {
  let a: int[] = new int[8];
  return probe(a, 6);
}
"""
        program = compile_source(src)
        merge_program_unsigned_checks(program)
        text = format_program(program)
        assert "checkunsigned" in text
        parsed = parse_ir_program(text)
        assert format_program(parsed) == text

    @pytest.mark.parametrize("name", ["Sieve", "Qsort", "jess"])
    def test_corpus_roundtrip(self, name):
        program = compile_source(get(name).source())
        text = format_program(program)
        parsed = parse_ir_program(text)
        assert format_program(parsed) == text
        assert (
            run_program(parsed, "main", fuel=100_000_000).value
            == run_program(program, "main", fuel=100_000_000).value
        )


class TestHandWrittenIR:
    def test_minimal_function(self):
        fn = parse_function("""
fn answer() {
entry:
    x := 42
    return x
}
""")
        assert fn.name == "answer"
        assert fn.entry == "entry"
        from repro.ir.function import Program

        program = Program()
        program.add_function(fn)
        assert run_program(program, "answer").value == 42

    def test_check_ids_advance_program_counter(self):
        program = parse_ir_program("""
fn f(a, i) {
entry:
    checklower #7 i
    checkupper #9 a[i]
    v := load a[i]
    return v
}
""")
        assert program.new_check_id() == 10

    def test_negative_constants(self):
        fn = parse_function("""
fn f() {
entry:
    x := -5
    y := add x, -3
    return y
}
""")
        from repro.ir.function import Program

        program = Program()
        program.add_function(fn)
        assert run_program(program, "f").value == -8

    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            parse_function("not a function")

    def test_instruction_before_label_rejected(self):
        with pytest.raises(ParseError):
            parse_function("fn f() {\n    x := 1\n}")

    def test_bad_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_function("""
fn f(x) {
entry:
    y := pi(x) [?? z]
    return y
}
""")

    def test_ssa_form_inference(self):
        plain = parse_function("fn f() {\ne:\n    x := 1\n    return x\n}")
        assert plain.ssa_form == "none"
        with_phi = parse_function(
            "fn f(c) {\na:\n    branch c ? b : b\nb:\n    x := phi(a: 1)\n    return x\n}"
        )
        assert with_phi.ssa_form == "ssa"
