"""Function inlining tests."""

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.instructions import Call
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_program
from repro.opt.inline import Inliner, inline_program, recursive_functions
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.interpreter import run_program
from repro.ssa.essa import construct_essa


def lowered(source: str):
    ast = parse_source(source)
    info = check_program(ast)
    return lower_program(ast, info)


def call_count(program, fn_name="main"):
    return sum(
        1
        for i in program.function(fn_name).all_instructions()
        if isinstance(i, Call)
    )


SIMPLE_SRC = """
fn double(x: int): int {
  return x + x;
}
fn main(): int {
  let a: int = double(5);
  let b: int = double(a);
  return a + b;
}
"""


class TestRecursionDetection:
    def test_direct_recursion(self):
        src = """
fn f(n: int): int { if (n <= 0) { return 0; } return f(n - 1); }
fn main(): int { return f(3); }
"""
        assert recursive_functions(lowered(src)) == {"f"}

    def test_mutual_recursion(self):
        src = """
fn even(n: int): bool { if (n == 0) { return true; } return odd(n - 1); }
fn odd(n: int): bool { if (n == 0) { return false; } return even(n - 1); }
fn main(): int { if (even(4)) { return 1; } return 0; }
"""
        assert recursive_functions(lowered(src)) == {"even", "odd"}

    def test_straight_calls_not_recursive(self):
        assert recursive_functions(lowered(SIMPLE_SRC)) == set()


class TestInlining:
    def test_simple_calls_inlined(self):
        program = lowered(SIMPLE_SRC)
        expanded = inline_program(program)
        assert expanded == 2
        assert call_count(program) == 0
        verify_program(program)

    def test_behaviour_preserved(self):
        program = lowered(SIMPLE_SRC)
        expected = run_program(program, "main").value
        inline_program(program)
        assert run_program(program, "main").value == expected == 30

    def test_void_callee(self):
        src = """
fn bump(a: int[], i: int): void {
  if (i >= 0 && i < len(a)) {
    a[i] = a[i] + 1;
  }
}
fn main(): int {
  let a: int[] = new int[4];
  bump(a, 2);
  bump(a, 2);
  bump(a, 9);
  return a[2];
}
"""
        program = lowered(src)
        expected = run_program(program, "main").value
        inline_program(program)
        assert call_count(program) == 0
        assert run_program(program, "main").value == expected == 2

    def test_recursive_callee_skipped(self):
        src = """
fn f(n: int): int { if (n <= 0) { return 0; } return f(n - 1) + n; }
fn main(): int { return f(4); }
"""
        program = lowered(src)
        inline_program(program)
        assert call_count(program) == 1  # the recursive call stays
        assert run_program(program, "main").value == 10

    def test_large_callee_skipped(self):
        body = " ".join(f"x = x + {i};" for i in range(80))
        src = f"""
fn big(seed: int): int {{
  let x: int = seed;
  {body}
  return x;
}}
fn main(): int {{ return big(1); }}
"""
        program = lowered(src)
        inline_program(program, max_callee_size=30)
        assert call_count(program) == 1

    def test_check_ids_stay_unique(self):
        src = """
fn get(a: int[], i: int): int { return a[i]; }
fn main(): int {
  let a: int[] = new int[4];
  return get(a, 1) + get(a, 2);
}
"""
        program = lowered(src)
        inline_program(program)
        ids = [c.check_id for c in program.all_checks()]
        assert len(ids) == len(set(ids))

    def test_nested_calls_inlined_over_rounds(self):
        src = """
fn inner(x: int): int { return x + 1; }
fn outer(x: int): int { return inner(x) * 2; }
fn main(): int { return outer(3); }
"""
        program = lowered(src)
        inline_program(program)
        assert call_count(program) == 0
        assert run_program(program, "main").value == 8

    def test_requires_non_ssa(self):
        program = lowered(SIMPLE_SRC)
        for fn in program.functions.values():
            construct_essa(fn)
        with pytest.raises(ValueError):
            Inliner(program).run()


class TestInliningHelpsABCD:
    SRC = """
fn append(buf: int[], count: int, value: int): int {
  if (count < len(buf)) {
    buf[count] = value;
    return count + 1;
  }
  return count;
}
fn main(): int {
  let buf: int[] = new int[64];
  let count: int = 0;
  for (let i: int = 0; i < 100; i = i + 1) {
    count = append(buf, count, i * 3);
  }
  return count;
}
"""

    def test_more_checks_provable_after_inlining(self):
        from repro.core.abcd import ABCDConfig, optimize_program

        plain = compile_source(self.SRC)
        plain_report = optimize_program(plain, ABCDConfig())

        inlined = compile_source(self.SRC, inline=True)
        base = clone_program(inlined)
        inlined_report = optimize_program(inlined, ABCDConfig())

        assert run(inlined, "main").value == run(base, "main").value == 64
        assert (
            inlined_report.eliminated_count() > plain_report.eliminated_count()
            or inlined_report.eliminated_count() == inlined_report.analyzed
        )

    def test_full_pipeline_behaviour(self, bubble_source):
        plain = compile_source(bubble_source)
        inlined = compile_source(bubble_source, inline=True)
        assert run(plain, "main").value == run(inlined, "main").value
