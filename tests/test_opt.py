"""Standard optimization pass tests (copy prop, const fold, DCE, GVN)."""

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.instructions import (
    BinOp,
    Branch,
    Cmp,
    Const,
    Copy,
    Phi,
    Pi,
    Var,
)
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_function
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    propagate_copies,
    run_standard_pipeline,
    value_number,
)
from repro.runtime.interpreter import run_program
from repro.ssa.construct import construct_ssa
from repro.ssa.essa import construct_essa


def ssa_fn(source: str, name: str = "f", essa: bool = False):
    ast = parse_source(source)
    info = check_program(ast)
    program = lower_program(ast, info)
    fn = program.function(name)
    if essa:
        construct_essa(fn)
    else:
        construct_ssa(fn)
    return program, fn


class TestCopyPropagation:
    def test_chain_collapsed(self):
        src = """
fn f(x: int): int {
  let a: int = x;
  let b: int = a;
  let c: int = b;
  return c + 1;
}
"""
        program, fn = ssa_fn(src)
        propagate_copies(fn)
        binop = next(i for i in fn.all_instructions() if isinstance(i, BinOp))
        assert binop.lhs == Var(fn.params[0])

    def test_constant_source_propagated(self):
        src = "fn f(): int { let a: int = 5; return a + 1; }"
        program, fn = ssa_fn(src)
        propagate_copies(fn)
        binop = next(i for i in fn.all_instructions() if isinstance(i, BinOp))
        assert binop.lhs == Const(5)

    def test_pi_not_propagated_through(self):
        src = "fn f(a: int[], i: int): int { return a[i]; }"
        program, fn = ssa_fn(src, essa=True)
        propagate_copies(fn)
        # π destinations must survive as the load's index.
        from repro.ir.instructions import ArrayLoad

        load = next(i for i in fn.all_instructions() if isinstance(i, ArrayLoad))
        pis = {i.dest for i in fn.all_instructions() if isinstance(i, Pi)}
        assert load.index.name in pis

    def test_requires_ssa(self):
        ast = parse_source("fn f(): void { }")
        info = check_program(ast)
        program = lower_program(ast, info)
        with pytest.raises(ValueError):
            propagate_copies(program.function("f"))

    def test_behaviour_preserved(self):
        src = """
fn main(): int {
  let a: int = 3;
  let b: int = a;
  let c: int = b + a;
  return c * 2;
}
"""
        program, fn = ssa_fn(src, "main")
        before = run_program(program, "main").value
        propagate_copies(fn)
        eliminate_dead_code(fn)
        verify_function(fn)
        assert run_program(program, "main").value == before == 12


class TestConstantFolding:
    def test_arith_folded(self):
        src = "fn f(): int { return 2 + 3; }"
        program, fn = ssa_fn(src)
        propagate_copies(fn)
        fold_constants(fn)
        assert not any(isinstance(i, BinOp) for i in fn.all_instructions())

    def test_division_by_zero_not_folded(self):
        src = "fn f(): int { let z: int = 0; return 1 / z; }"
        program, fn = ssa_fn(src)
        propagate_copies(fn)
        fold_constants(fn)
        # The division must survive to raise at run time.
        assert any(
            isinstance(i, BinOp) and i.op == "div" for i in fn.all_instructions()
        )

    def test_add_zero_identity(self):
        src = "fn f(x: int): int { return x + 0; }"
        program, fn = ssa_fn(src)
        fold_constants(fn)
        assert not any(isinstance(i, BinOp) for i in fn.all_instructions())

    def test_comparison_folded(self):
        src = "fn f(): int { if (1 < 2) { return 1; } return 0; }"
        program, fn = ssa_fn(src)
        # Folding the comparison yields a constant copy; a second
        # propagate+fold round then folds the branch itself.
        run_standard_pipeline(fn)
        # The branch is now unconditional; only one return is reachable.
        assert not any(isinstance(i, Cmp) for i in fn.all_instructions())
        assert not any(
            isinstance(b.terminator, Branch) for b in fn.blocks.values()
        )

    def test_branch_folding_prunes_phi(self):
        src = """
fn f(): int {
  let x: int = 0;
  if (true) {
    x = 1;
  } else {
    x = 2;
  }
  return x;
}
"""
        program, fn = ssa_fn(src)
        propagate_copies(fn)
        fold_constants(fn)
        verify_function(fn)
        assert run_program(program, "f").value == 1

    def test_mod_folded(self):
        src = "fn f(): int { return 17 % 5; }"
        program, fn = ssa_fn(src)
        propagate_copies(fn)
        fold_constants(fn)
        assert run_program(program, "f").value == 2


class TestDCE:
    def test_dead_copy_removed(self):
        src = """
fn f(x: int): int {
  let unused: int = x + 42;
  return x;
}
"""
        program, fn = ssa_fn(src)
        removed = eliminate_dead_code(fn)
        assert removed >= 1
        assert not any(isinstance(i, BinOp) for i in fn.all_instructions())

    def test_chain_of_dead_code_removed(self):
        src = """
fn f(x: int): int {
  let a: int = x + 1;
  let b: int = a + 1;
  let c: int = b + 1;
  return x;
}
"""
        program, fn = ssa_fn(src)
        eliminate_dead_code(fn)
        assert not any(isinstance(i, BinOp) for i in fn.all_instructions())

    def test_checks_never_removed(self):
        src = "fn f(a: int[], i: int): int { let v: int = a[i]; return 0; }"
        program, fn = ssa_fn(src)
        eliminate_dead_code(fn)
        from repro.ir.instructions import CheckLower, CheckUpper

        kinds = {type(i) for i in fn.all_instructions()}
        assert CheckLower in kinds and CheckUpper in kinds

    def test_dead_pi_kept(self):
        src = """
fn f(a: int[], i: int): int {
  if (i < len(a)) {
    return 1;
  }
  return 0;
}
"""
        program, fn = ssa_fn(src, essa=True)
        eliminate_dead_code(fn)
        assert any(isinstance(i, Pi) for i in fn.all_instructions())

    def test_allocation_kept(self):
        src = """
fn f(n: int): int {
  let a: int[] = new int[n];
  return n;
}
"""
        program, fn = ssa_fn(src)
        eliminate_dead_code(fn)
        from repro.ir.instructions import ArrayNew

        assert any(isinstance(i, ArrayNew) for i in fn.all_instructions())

    def test_dead_phi_removed(self):
        src = """
fn f(c: int): int {
  let x: int = 0;
  if (c > 0) {
    x = 1;
  }
  return c;
}
"""
        program, fn = ssa_fn(src)
        eliminate_dead_code(fn)
        assert not any(isinstance(i, Phi) for i in fn.all_instructions())


class TestGVN:
    def test_identical_expressions_congruent(self):
        src = """
fn f(x: int): int {
  let a: int = x + 1;
  let b: int = x + 1;
  return a + b;
}
"""
        program, fn = ssa_fn(src)
        vn = value_number(fn)
        adds = [i.dest for i in fn.all_instructions() if isinstance(i, BinOp) and i.rhs == Const(1)]
        assert len(adds) == 2
        assert vn.congruent(adds[0], adds[1])

    def test_different_expressions_not_congruent(self):
        src = """
fn f(x: int): int {
  let a: int = x + 1;
  let b: int = x + 2;
  return a + b;
}
"""
        program, fn = ssa_fn(src)
        vn = value_number(fn)
        adds = [
            i.dest
            for i in fn.all_instructions()
            if isinstance(i, BinOp)
        ][:2]
        assert not vn.congruent(adds[0], adds[1])

    def test_commutative_add(self):
        src = """
fn f(x: int, y: int): int {
  let a: int = x + y;
  let b: int = y + x;
  return a + b;
}
"""
        program, fn = ssa_fn(src)
        vn = value_number(fn)
        adds = [
            i.dest
            for i in fn.all_instructions()
            if isinstance(i, BinOp) and {str(i.lhs), str(i.rhs)} == {fn.params[0], fn.params[1]}
        ]
        assert vn.congruent(adds[0], adds[1])

    def test_pi_congruent_to_source(self):
        src = "fn f(a: int[], i: int): int { return a[i]; }"
        program, fn = ssa_fn(src, essa=True)
        vn = value_number(fn)
        pi = next(i for i in fn.all_instructions() if isinstance(i, Pi))
        assert vn.congruent(pi.dest, pi.src)

    def test_class_members(self):
        src = """
fn f(x: int): int {
  let a: int = x;
  return a;
}
"""
        program, fn = ssa_fn(src)
        vn = value_number(fn)
        members = vn.class_members(fn.params[0])
        assert len(members) >= 2


class TestStandardPipeline:
    def test_fixpoint_and_behaviour(self, bubble_source):
        ast = parse_source(bubble_source)
        info = check_program(ast)
        program = lower_program(ast, info)
        for fn in program.functions.values():
            construct_essa(fn)
        before = run_program(program, "main").value
        for fn in program.functions.values():
            run_standard_pipeline(fn)
            verify_function(fn)
        assert run_program(program, "main").value == before
