"""Tests for the overload-control subsystem (``src/repro/serve/overload.py``).

Pure-logic layer: no subprocesses, no wall clock.  Every test drives the
admission queue, the degradation ladder, and the controller with
explicit ``now`` values (or a :class:`VirtualClock`), which is exactly
the determinism contract the burst storm relies on.
"""

from __future__ import annotations

import pytest

from repro.passes.manager import SessionStats
from repro.serve.overload import (
    LEVEL_FULL,
    LEVEL_NO_CERTIFY,
    LEVEL_SHED,
    LEVEL_UNOPTIMIZED,
    AdmissionQueue,
    DegradationLadder,
    OverloadConfig,
    OverloadController,
    VirtualClock,
    latency_summary,
    percentile,
)


def make_config(**overrides) -> OverloadConfig:
    defaults = dict(
        enabled=True,
        queue_capacity=4,
        watermarks=(1.0, 2.0, 4.0),
        window=10.0,
        hysteresis_ratio=0.5,
        retry_after=0.25,
    )
    defaults.update(overrides)
    return OverloadConfig(**defaults)


# ----------------------------------------------------------------------
# VirtualClock and the percentile helpers.
# ----------------------------------------------------------------------


class TestVirtualClock:
    def test_starts_where_told_and_advances(self):
        clock = VirtualClock(5.0)
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_ignores_non_positive_advances(self):
        clock = VirtualClock()
        clock.advance(0.0)
        clock.advance(-3.0)
        assert clock.now() == 0.0


class TestPercentiles:
    def test_nearest_rank_exact_values(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0

    def test_empty_and_singleton(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([7.0], 0.5) == 7.0

    def test_summary_is_rounded_and_complete(self):
        summary = latency_summary([0.1234567, 0.2, 0.3])
        assert summary["count"] == 3
        assert summary["p50"] == 0.2
        assert summary["max"] == 0.3
        # Rounded to 6 decimals: byte-stable JSON.
        assert summary["p50"] == round(summary["p50"], 6)

    def test_summary_of_nothing(self):
        assert latency_summary([]) == {
            "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0
        }


# ----------------------------------------------------------------------
# The degradation ladder: immediate escalation, hysteretic recovery.
# ----------------------------------------------------------------------


class TestDegradationLadder:
    def test_escalates_immediately_on_watermark_crossing(self):
        ladder = DegradationLadder(make_config())
        ladder.observe(0.5, now=0.0)
        assert ladder.level == LEVEL_FULL
        ladder.observe(1.0, now=1.0)
        assert ladder.level == LEVEL_NO_CERTIFY
        ladder.observe(2.5, now=2.0)
        assert ladder.level == LEVEL_UNOPTIMIZED

    def test_one_huge_sample_climbs_multiple_levels(self):
        ladder = DegradationLadder(make_config())
        ladder.observe(100.0, now=0.0)
        assert ladder.level == LEVEL_SHED
        assert ladder.max_level == LEVEL_SHED

    def test_recovery_steps_down_one_level_per_clear_window(self):
        config = make_config(window=10.0)
        ladder = DegradationLadder(config)
        ladder.observe(5.0, now=0.0)
        assert ladder.level == LEVEL_SHED
        # Inside the window nothing relaxes, even though no new load.
        assert ladder.poll(now=5.0) == LEVEL_SHED
        # One full window after the transition (sample pruned, signal 0):
        # exactly one step down, not a free-fall.
        assert ladder.poll(now=10.1) == LEVEL_UNOPTIMIZED
        assert ladder.poll(now=10.2) == LEVEL_UNOPTIMIZED
        assert ladder.poll(now=20.3) == LEVEL_NO_CERTIFY
        assert ladder.poll(now=30.5) == LEVEL_FULL
        assert ladder.max_level == LEVEL_SHED
        # 3 up + 3 down.
        assert ladder.transitions == 6

    def test_hysteresis_blocks_stepdown_while_signal_lingers(self):
        config = make_config(watermarks=(1.0, 2.0, 4.0), window=10.0)
        ladder = DegradationLadder(config)
        ladder.observe(2.0, now=0.0)
        assert ladder.level == LEVEL_UNOPTIMIZED
        # A window has passed, but fresh samples keep the signal at 0.9:
        # below the level-2 watermark yet above hysteresis_ratio * the
        # level-1 entry watermark (0.5 * 2.0 = 1.0)?  0.9 < 1.0, so it
        # WOULD step; use 1.5 to actually linger.
        ladder.observe(1.5, now=11.0)
        assert ladder.level == LEVEL_UNOPTIMIZED  # 1.5 >= 0.5*2.0 blocks
        # Signal finally drops below the hysteresis threshold for a full
        # window: recovery resumes.
        assert ladder.poll(now=22.0) == LEVEL_NO_CERTIFY

    def test_disabled_ladder_never_moves(self):
        ladder = DegradationLadder(make_config(enabled=False))
        ladder.observe(100.0, now=0.0)
        assert ladder.poll(now=50.0) == LEVEL_FULL
        assert ladder.transitions == 0

    def test_signal_is_windowed_max(self):
        ladder = DegradationLadder(make_config(window=10.0, watermarks=(50, 60, 70)))
        ladder.observe(3.0, now=0.0)
        ladder.observe(1.0, now=5.0)
        assert ladder.signal(now=6.0) == 3.0
        # The 3.0 sample ages out of the window; the 1.0 remains.
        assert ladder.signal(now=12.0) == 1.0


# ----------------------------------------------------------------------
# Admission queue: bounded depth, deadline expiry on pop.
# ----------------------------------------------------------------------


class TestAdmissionQueue:
    def test_fills_to_capacity_then_reports_full(self):
        queue = AdmissionQueue(make_config(queue_capacity=2))
        queue.push({"id": 1}, now=0.0)
        assert not queue.full()
        queue.push({"id": 2}, now=0.0)
        assert queue.full()

    def test_pop_is_fifo_with_timestamps(self):
        queue = AdmissionQueue(make_config())
        queue.push({"id": "a"}, now=1.0)
        queue.push({"id": "b"}, now=2.0)
        entry, expired = queue.pop(now=3.0)
        assert entry.frame["id"] == "a" and entry.enqueued_at == 1.0
        assert expired == []

    def test_pop_sheds_expired_entries_first(self):
        queue = AdmissionQueue(make_config())
        queue.push({"id": "stale"}, now=0.0, deadline_at=1.0)
        queue.push({"id": "fresh"}, now=0.0, deadline_at=100.0)
        entry, expired = queue.pop(now=5.0)
        assert entry.frame["id"] == "fresh"
        assert [e.frame["id"] for e in expired] == ["stale"]

    def test_disabled_queue_never_expires_or_fills(self):
        queue = AdmissionQueue(make_config(enabled=False, queue_capacity=1))
        queue.push({"id": "a"}, now=0.0, deadline_at=1.0)
        queue.push({"id": "b"}, now=0.0)
        assert not queue.full()  # unbounded: the pre-overload behavior
        entry, expired = queue.pop(now=50.0)
        assert entry.frame["id"] == "a" and expired == []

    def test_drain_empties_everything(self):
        queue = AdmissionQueue(make_config())
        for i in range(3):
            queue.push({"id": i}, now=0.0)
        drained = queue.drain()
        assert [e.frame["id"] for e in drained] == [0, 1, 2]
        assert queue.depth() == 0


# ----------------------------------------------------------------------
# The controller: admission policy + counters + backpressure hints.
# ----------------------------------------------------------------------


class TestOverloadController:
    def make(self, **overrides):
        stats = SessionStats()
        return OverloadController(make_config(**overrides), stats=stats), stats

    def test_admits_until_queue_full_then_sheds(self):
        controller, stats = self.make(queue_capacity=2)
        assert controller.admit({"id": 1}, now=0.0) is None
        assert controller.admit({"id": 2}, now=0.0) is None
        assert controller.admit({"id": 3}, now=0.0) == "queue-full"
        assert stats.counters["serve.overload.admitted"] == 2
        assert stats.counters["serve.overload.shed-queue-full"] == 1
        assert stats.counters["serve.overload.queue-depth_peak"] == 2

    def test_sheds_at_ladder_level_three(self):
        controller, stats = self.make()
        controller.ladder.observe(100.0, now=0.0)  # straight to shed
        assert controller.admit({"id": 1}, now=0.1) == "degrade-level"
        assert stats.counters["serve.overload.shed-level"] == 1

    def test_pop_feeds_ladder_and_counts_deadline_sheds(self):
        controller, stats = self.make(watermarks=(1.0, 2.0, 4.0))
        controller.admit({"id": "stale"}, now=0.0, deadline_at=1.0)
        controller.admit({"id": "slow"}, now=0.0)
        entry, expired = controller.pop(now=1.5)
        assert entry.frame["id"] == "slow"
        assert len(expired) == 1
        assert stats.counters["serve.overload.deadline-shed"] == 1
        # Both waits (1.5s each) were observed: past the level-1 mark.
        assert controller.ladder.level == LEVEL_NO_CERTIFY

    def test_retry_after_scales_with_depth_and_level(self):
        controller, _ = self.make(queue_capacity=4, retry_after=0.25)
        idle = controller.retry_after(now=0.0)
        assert idle == 0.25  # pressure 1.0: empty queue, level 0
        controller.admit({"id": 1}, now=0.0)
        controller.admit({"id": 2}, now=0.0)
        deeper = controller.retry_after(now=0.0)
        assert deeper > idle
        controller.ladder.observe(100.0, now=0.0)
        assert controller.retry_after(now=0.0) > deeper

    def test_snapshot_shape(self):
        controller, _ = self.make()
        snapshot = controller.snapshot(now=0.0)
        assert snapshot["enabled"] is True
        assert snapshot["level"] == LEVEL_FULL
        assert snapshot["queue_depth"] == 0
        assert snapshot["watermarks"] == [1.0, 2.0, 4.0]
        assert set(snapshot) >= {
            "max_level", "transitions", "queue_capacity", "signal",
            "window", "hysteresis_ratio",
        }

    def test_deterministic_under_virtual_clock(self):
        """Same schedule + same clock => identical trajectories."""
        def run():
            clock = VirtualClock()
            controller, stats = self.make(queue_capacity=3)
            trace = []
            for i in range(20):
                reason = controller.admit(
                    {"id": i}, clock.now(),
                    deadline_at=clock.now() + 0.4 if i % 3 == 0 else None,
                )
                if i % 2 == 0:
                    entry, expired = controller.pop(clock.now())
                    trace.append(
                        (reason, entry and entry.frame["id"], len(expired))
                    )
                clock.advance(0.25)
            trace.append(controller.snapshot(clock.now()))
            trace.append(sorted(stats.counters.items()))
            return trace

        assert run() == run()
