"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only_yields_eof(self):
        assert kinds("  \t\n  ") == [TokenKind.EOF]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.value == 42

    def test_zero_literal(self):
        assert tokenize("0")[0].value == 0

    def test_large_literal(self):
        assert tokenize("123456789012345")[0].value == 123456789012345

    def test_identifier(self):
        token = tokenize("counter")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "counter"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("_hash_2x")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "_hash_2x"

    def test_identifier_may_not_start_with_digit(self):
        with pytest.raises(LexError):
            tokenize("2x")


class TestKeywords:
    @pytest.mark.parametrize(
        "word,kind",
        [
            ("fn", TokenKind.KW_FN),
            ("let", TokenKind.KW_LET),
            ("if", TokenKind.KW_IF),
            ("else", TokenKind.KW_ELSE),
            ("while", TokenKind.KW_WHILE),
            ("for", TokenKind.KW_FOR),
            ("return", TokenKind.KW_RETURN),
            ("break", TokenKind.KW_BREAK),
            ("continue", TokenKind.KW_CONTINUE),
            ("true", TokenKind.KW_TRUE),
            ("false", TokenKind.KW_FALSE),
            ("int", TokenKind.KW_INT),
            ("bool", TokenKind.KW_BOOL),
            ("void", TokenKind.KW_VOID),
            ("new", TokenKind.KW_NEW),
            ("len", TokenKind.KW_LEN),
        ],
    )
    def test_keyword(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind is TokenKind.IDENT

    def test_keywords_are_case_sensitive(self):
        assert tokenize("If")[0].kind is TokenKind.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.AND),
            ("||", TokenKind.OR),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("=", TokenKind.ASSIGN),
            ("!", TokenKind.NOT),
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("%", TokenKind.PERCENT),
        ],
    )
    def test_operator(self, text, kind):
        assert tokenize(text)[0].kind is kind

    def test_two_char_operators_win_over_one_char(self):
        assert kinds("<= < ==")[:3] == [TokenKind.LE, TokenKind.LT, TokenKind.EQ]

    def test_adjacent_operators_split_correctly(self):
        # "a<=b" must not lex "<" then "=b".
        assert kinds("a<=b")[:3] == [TokenKind.IDENT, TokenKind.LE, TokenKind.IDENT]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_division_not_confused_with_comment(self):
        assert kinds("a / b")[:3] == [
            TokenKind.IDENT,
            TokenKind.SLASH,
            TokenKind.IDENT,
        ]


class TestLocations:
    def test_first_token_location(self):
        token = tokenize("abc")[0]
        assert (token.location.line, token.location.column) == (1, 1)

    def test_location_advances_by_columns(self):
        tokens = tokenize("ab cd")
        assert tokens[1].location.column == 4

    def test_location_advances_by_lines(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[1].location.line == 2
        assert tokens[2].location.line == 3
        assert tokens[2].location.column == 3

    def test_error_carries_location(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok\n   $")
        assert "2:4" in str(excinfo.value)


class TestRealisticInput:
    def test_function_header(self):
        expected = [
            TokenKind.KW_FN,
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COLON,
            TokenKind.KW_INT,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.RPAREN,
            TokenKind.COLON,
            TokenKind.KW_VOID,
            TokenKind.EOF,
        ]
        assert kinds("fn f(a: int[]): void") == expected

    def test_array_access_statement(self):
        assert kinds("a[i] = a[i + 1];")[:5] == [
            TokenKind.IDENT,
            TokenKind.LBRACKET,
            TokenKind.IDENT,
            TokenKind.RBRACKET,
            TokenKind.ASSIGN,
        ]
