"""End-to-end ABCD elimination tests over MiniJ idioms."""

import pytest

from repro.core.abcd import ABCDConfig
from repro.ir.instructions import CheckLower, CheckUpper
from tests.conftest import optimize_and_compare


def remaining_checks(program):
    lowers = uppers = 0
    for fn in program.functions.values():
        for instr in fn.all_instructions():
            if isinstance(instr, CheckLower):
                lowers += 1
            elif isinstance(instr, CheckUpper):
                uppers += 1
    return lowers, uppers


class TestLenBoundedLoop:
    SRC = """
fn main(): int {
  let a: int[] = new int[20];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""

    def test_all_checks_eliminated(self):
        base, opt, report, program = optimize_and_compare(self.SRC)
        assert remaining_checks(program) == (0, 0)
        assert opt.stats.total_checks == 0
        assert base.stats.total_checks == 40

    def test_report_accounts_for_every_check(self):
        _, _, report, _ = optimize_and_compare(self.SRC)
        assert report.analyzed == 2
        assert report.eliminated_count() == 2


class TestCachedLengthLoop:
    SRC = """
fn main(): int {
  let a: int[] = new int[20];
  let n: int = len(a);
  let s: int = 0;
  let i: int = 0;
  while (i < n) {
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
"""

    def test_c1_chain_proves_upper(self):
        _, opt, _, program = optimize_and_compare(self.SRC)
        assert remaining_checks(program) == (0, 0)


class TestAllocationBoundLoop:
    SRC = """
fn main(): int {
  let n: int = 33;
  let a: int[] = new int[n];
  let s: int = 0;
  for (let i: int = 0; i < n; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""

    def test_allocation_fact_proves_upper(self):
        _, opt, _, program = optimize_and_compare(self.SRC)
        assert remaining_checks(program) == (0, 0)

    def test_without_allocation_facts_upper_survives(self):
        config = ABCDConfig(allocation_facts=False, gvn_mode="off")
        _, opt, _, program = optimize_and_compare(self.SRC, config=config)
        lowers, uppers = remaining_checks(program)
        assert lowers == 0  # i >= 0 still provable
        assert uppers == 1


class TestDownwardLoop:
    SRC = """
fn main(): int {
  let a: int[] = new int[20];
  let s: int = 0;
  let i: int = len(a) - 1;
  while (i >= 0) {
    s = s + a[i];
    i = i - 1;
  }
  return s;
}
"""

    def test_decrementing_loop_eliminated(self):
        _, opt, _, program = optimize_and_compare(self.SRC)
        assert remaining_checks(program) == (0, 0)


class TestCheckSubsumption:
    SRC = """
fn main(): int {
  let a: int[] = new int[10];
  let k: int = 4;
  let x: int = a[k];
  let y: int = a[k];
  return x + y;
}
"""

    def test_second_check_subsumed_by_first(self):
        # The first access's checks guard the second (C5 π constraints).
        _, opt, report, program = optimize_and_compare(self.SRC)
        assert opt.stats.total_checks <= 2

    def test_offset_subsumption(self):
        # a[i-1] is subsumed by a[i] for the upper bound, and a[i] by
        # a[i-1] for the lower bound (the paper's subsumption note).
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let i: int = 5;
  let x: int = a[i];
  let y: int = a[i - 1];
  return x + y;
}
"""
        base, opt, _, _ = optimize_and_compare(src)
        assert opt.stats.total_checks < base.stats.total_checks


class TestUnprovableIdioms:
    def test_constant_index_provable_via_allocation(self):
        # Constant folding turns (0+15)/2 into 7, and 7 <= 16 - 9 makes the
        # upper check provable through the allocation constant.
        src = """
fn main(): int {
  let a: int[] = new int[16];
  let lo: int = 0;
  let hi: int = 15;
  let mid: int = (lo + hi) / 2;
  return a[mid];
}
"""
        _, opt, _, program = optimize_and_compare(src)
        assert remaining_checks(program) == (0, 0)

    def test_division_defeats_abcd(self):
        src = """
fn main(): int {
  let a: int[] = new int[16];
  let lo: int = 0;
  let hi: int = len(a) - 1;
  let mid: int = (lo + hi) / 2;
  return a[mid];
}
"""
        _, opt, _, program = optimize_and_compare(src)
        lowers, uppers = remaining_checks(program)
        assert uppers == 1 and lowers == 1

    def test_guarded_division_is_provable(self):
        src = """
fn main(): int {
  let a: int[] = new int[16];
  let lo: int = 0;
  let hi: int = len(a) - 1;
  let mid: int = (lo + hi) / 2;
  if (mid >= 0 && mid < len(a)) {
    return a[mid];
  }
  return 0;
}
"""
        _, opt, _, program = optimize_and_compare(src)
        assert remaining_checks(program) == (0, 0)

    def test_unrelated_array_bound_fails(self):
        src = """
fn main(): int {
  let a: int[] = new int[16];
  let b: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    if (i < 8) {
      s = s + b[i];
    }
  }
  return s;
}
"""
        # b's checks are provable only through the i < 8 guard plus b's
        # allocation constant: 8 <= len(b).
        _, opt, _, program = optimize_and_compare(src)
        assert remaining_checks(program) == (0, 0)

    def test_param_index_not_provable(self):
        src = """
fn get(a: int[], i: int): int {
  return a[i];
}
fn main(): int {
  let a: int[] = new int[4];
  return get(a, 2);
}
"""
        _, opt, _, program = optimize_and_compare(src)
        lowers, uppers = remaining_checks(program)
        assert (lowers, uppers) == (1, 1)


class TestConfigSelectivity:
    SRC = """
fn main(): int {
  let a: int[] = new int[20];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""

    def test_upper_only(self):
        config = ABCDConfig(lower=False)
        _, _, report, program = optimize_and_compare(self.SRC, config=config)
        lowers, uppers = remaining_checks(program)
        assert uppers == 0 and lowers == 1
        assert report.analyzed_count("lower") == 0

    def test_lower_only(self):
        config = ABCDConfig(upper=False)
        _, _, report, program = optimize_and_compare(self.SRC, config=config)
        lowers, uppers = remaining_checks(program)
        assert lowers == 0 and uppers == 1

    def test_hot_checks_restriction(self):
        from repro.pipeline import compile_source
        from repro.runtime.profiler import collect_profile

        program = compile_source(self.SRC)
        profile = collect_profile(program, "main")
        hottest = profile.hot_checks()[:1]
        config = ABCDConfig(hot_checks=set(hottest))
        from repro.core.abcd import optimize_program

        report = optimize_program(program, config)
        assert report.analyzed == 1
        assert report.analyses[0].check_id == hottest[0]

    def test_bad_gvn_mode_rejected(self):
        from repro.core.abcd import optimize_program
        from repro.pipeline import compile_source

        program = compile_source(self.SRC)
        with pytest.raises(ValueError):
            optimize_program(program, ABCDConfig(gvn_mode="bogus"))


class TestScopeClassification:
    def test_same_block_redundancy_is_local(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let k: int = 3;
  let x: int = a[k];
  let y: int = a[k];
  return x + y;
}
"""
        _, _, report, _ = optimize_and_compare(src)
        eliminated = [a for a in report.analyses if a.eliminated]
        assert any(a.scope == "local" for a in eliminated)

    def test_loop_redundancy_is_global(self):
        src = """
fn main(): int {
  let a: int[] = new int[10];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
        _, _, report, _ = optimize_and_compare(src)
        eliminated = [a for a in report.analyses if a.eliminated]
        assert eliminated
        assert all(a.scope == "global" for a in eliminated)


class TestGVNModes:
    SRC = """
fn main(): int {
  let a: int[] = new int[32];
  let bad: int = 0;
  for (let i: int = 0; i + 1 < len(a); i = i + 1) {
    if (a[i] > a[i + 1]) {
      bad = bad + 1;
    }
  }
  return bad;
}
"""

    def test_augment_beats_off(self):
        config_off = ABCDConfig(gvn_mode="off")
        _, _, report_off, prog_off = optimize_and_compare(self.SRC, config=config_off)
        config_aug = ABCDConfig(gvn_mode="augment")
        _, _, report_aug, prog_aug = optimize_and_compare(self.SRC, config=config_aug)
        assert (
            report_aug.eliminated_count("upper")
            > report_off.eliminated_count("upper")
        )
        assert remaining_checks(prog_aug) == (0, 0)

    def test_consult_handles_array_aliases(self):
        # Defeat copy propagation with a φ that GVN still sees through:
        # both branches yield the same array value.
        src = """
fn main(): int {
  let a: int[] = new int[16];
  let n: int = len(a);
  let s: int = 0;
  for (let i: int = 0; i < n; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""
        config = ABCDConfig(gvn_mode="consult")
        _, _, _, program = optimize_and_compare(src, config=config)
        assert remaining_checks(program) == (0, 0)


class TestMultiFunction:
    def test_each_function_optimized_independently(self):
        src = """
fn sum(a: int[]): int {
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}
fn fill(a: int[]): void {
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
  }
}
fn main(): int {
  let a: int[] = new int[12];
  fill(a);
  return sum(a);
}
"""
        base, opt, report, program = optimize_and_compare(src)
        assert remaining_checks(program) == (0, 0)
        assert opt.value == 66
