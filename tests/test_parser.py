"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.frontend.types import BOOL, INT, INT_ARRAY, VOID


def parse_fn(body: str, header: str = "fn f(): void") -> ast.FunctionDecl:
    program = parse_source(f"{header} {{ {body} }}")
    return program.functions[0]


def parse_expr(expr: str) -> ast.Expr:
    fn = parse_fn(f"let x: int = {expr};")
    stmt = fn.body[0]
    assert isinstance(stmt, ast.LetStmt)
    return stmt.value


class TestDeclarations:
    def test_empty_program(self):
        assert parse_source("").functions == []

    def test_function_with_params(self):
        fn = parse_source("fn add(a: int, b: int): int { return a + b; }").functions[0]
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert [p.type for p in fn.params] == [INT, INT]
        assert fn.return_type is INT

    def test_array_param_and_void_return(self):
        fn = parse_source("fn g(a: int[]): void { }").functions[0]
        assert fn.params[0].type is INT_ARRAY
        assert fn.return_type is VOID

    def test_bool_type(self):
        fn = parse_source("fn g(flag: bool): bool { return flag; }").functions[0]
        assert fn.params[0].type is BOOL

    def test_void_param_rejected(self):
        with pytest.raises(ParseError):
            parse_source("fn g(x: void): void { }")

    def test_multiple_functions(self):
        program = parse_source("fn a(): void { } fn b(): void { }")
        assert [f.name for f in program.functions] == ["a", "b"]

    def test_program_lookup(self):
        program = parse_source("fn a(): void { } fn b(): void { }")
        assert program.function("b").name == "b"
        with pytest.raises(KeyError):
            program.function("missing")

    def test_missing_return_type_rejected(self):
        with pytest.raises(ParseError):
            parse_source("fn f() { }")


class TestStatements:
    def test_let(self):
        stmt = parse_fn("let x: int = 1;").body[0]
        assert isinstance(stmt, ast.LetStmt)
        assert stmt.name == "x"
        assert stmt.declared_type is INT

    def test_assignment(self):
        fn = parse_fn("let x: int = 1; x = 2;")
        assert isinstance(fn.body[1], ast.AssignStmt)

    def test_array_store(self):
        stmt = parse_fn("a[i] = 5;", header="fn f(a: int[], i: int): void").body[0]
        assert isinstance(stmt, ast.ArrayStoreStmt)

    def test_nested_array_store_target(self):
        stmt = parse_fn(
            "a[a[0]] = 5;", header="fn f(a: int[]): void"
        ).body[0]
        assert isinstance(stmt, ast.ArrayStoreStmt)
        assert isinstance(stmt.index, ast.ArrayIndex)

    def test_if_without_else(self):
        stmt = parse_fn("if (true) { return; }").body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body == []

    def test_if_else(self):
        stmt = parse_fn("if (true) { return; } else { return; }").body[0]
        assert len(stmt.else_body) == 1

    def test_else_if_chains(self):
        stmt = parse_fn(
            "if (true) { return; } else if (false) { return; } else { return; }"
        ).body[0]
        assert isinstance(stmt.else_body[0], ast.IfStmt)

    def test_while(self):
        stmt = parse_fn("while (true) { }").body[0]
        assert isinstance(stmt, ast.WhileStmt)

    def test_for_full_header(self):
        stmt = parse_fn("for (let i: int = 0; i < 10; i = i + 1) { }").body[0]
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.LetStmt)
        assert stmt.condition is not None
        assert isinstance(stmt.step, ast.AssignStmt)

    def test_for_empty_header(self):
        stmt = parse_fn("for (;;) { break; }").body[0]
        assert stmt.init is None and stmt.condition is None and stmt.step is None

    def test_return_value(self):
        stmt = parse_fn("return 1;", header="fn f(): int").body[0]
        assert isinstance(stmt.value, ast.IntLiteral)

    def test_return_bare(self):
        stmt = parse_fn("return;").body[0]
        assert stmt.value is None

    def test_break_continue(self):
        fn = parse_fn("while (true) { break; continue; }")
        loop = fn.body[0]
        assert isinstance(loop.body[0], ast.BreakStmt)
        assert isinstance(loop.body[1], ast.ContinueStmt)

    def test_call_statement(self):
        stmt = parse_fn("g();", header="fn f(): void").body[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_fn("let x: int = 1")

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError):
            parse_source("fn f(): void { let x: int = 1;")

    def test_bare_expression_statement_rejected(self):
        # Only calls are allowed in statement position.
        with pytest.raises(ParseError):
            parse_fn("let x: int = 1; x;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.rhs, ast.BinaryOp) and expr.rhs.op == "*"

    def test_left_associativity_of_sub(self):
        expr = parse_expr("10 - 3 - 2")
        assert expr.op == "-"
        assert isinstance(expr.lhs, ast.BinaryOp) and expr.lhs.op == "-"

    def test_parentheses_override_precedence(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.lhs, ast.BinaryOp) and expr.lhs.op == "+"

    def test_comparison_binds_looser_than_arithmetic(self):
        fn = parse_fn("if (a + 1 < b * 2) { }", header="fn f(a: int, b: int): void")
        cond = fn.body[0].condition
        assert cond.op == "<"
        assert cond.lhs.op == "+"

    def test_and_binds_tighter_than_or(self):
        fn = parse_fn(
            "if (a || b && c) { }",
            header="fn f(a: bool, b: bool, c: bool): void",
        )
        cond = fn.body[0].condition
        assert cond.op == "||"
        assert cond.rhs.op == "&&"

    def test_unary_minus(self):
        expr = parse_expr("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.lhs, ast.UnaryOp) and expr.lhs.op == "-"

    def test_double_negation(self):
        fn = parse_fn("if (!!a) { }", header="fn f(a: bool): void")
        cond = fn.body[0].condition
        assert cond.op == "!" and cond.operand.op == "!"

    def test_array_index_chain(self):
        expr = parse_expr("a[a[0]]")
        assert isinstance(expr, ast.ArrayIndex)
        assert isinstance(expr.index, ast.ArrayIndex)

    def test_len(self):
        expr = parse_expr("len(a)")
        assert isinstance(expr, ast.ArrayLength)

    def test_new_array(self):
        expr = parse_expr("new int[10]")
        assert isinstance(expr, ast.NewArray)

    def test_call_with_args(self):
        expr = parse_expr("g(1, x, a[0])")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_call_no_args(self):
        expr = parse_expr("g()")
        assert expr.args == []

    def test_bool_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_chained_comparison_rejected(self):
        # MiniJ comparisons are non-associative: a < b < c is a parse error
        # (the second '<' has no valid continuation).
        with pytest.raises(ParseError):
            parse_expr("1 < 2 < 3")

    def test_error_mentions_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_source("fn f(): void {\n let x: int = ;\n}")
        assert "2:" in str(excinfo.value)
