"""Compiled-tier (Python codegen) tests: differential vs the interpreter."""

import pytest

from repro.bench.corpus import get
from repro.errors import BoundsCheckError, MiniJRuntimeError
from repro.pipeline import abcd, clone_program, compile_source, run
from repro.runtime.codegen import compile_to_python
from repro.runtime.values import ArrayValue


def both_tiers(source: str, fn="main", args=(), optimize=False, fuel=100_000_000):
    program = compile_source(source)
    if optimize:
        abcd(program)
    interpreted = run(clone_program(program), fn, args, fuel=fuel)
    compiled = compile_to_python(program).run(fn, args)
    return interpreted, compiled


class TestBasicEquivalence:
    def test_arithmetic(self):
        interp, comp = both_tiers("fn main(): int { return (0 - 17) / 5 + 9 % 4; }")
        assert interp.value == comp.value == -2

    def test_loop_with_checks(self, bubble_source):
        interp, comp = both_tiers(bubble_source)
        assert interp.value == comp.value
        assert interp.stats.total_checks == comp.stats.total_checks
        assert interp.stats.cycles == comp.stats.cycles
        assert interp.stats.instructions == comp.stats.instructions

    def test_optimized_program(self, bubble_source):
        interp, comp = both_tiers(bubble_source, optimize=True)
        assert interp.value == comp.value
        assert interp.stats.total_checks == comp.stats.total_checks

    def test_recursion(self):
        src = """
fn fib(n: int): int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main(): int { return fib(12); }
"""
        interp, comp = both_tiers(src)
        assert interp.value == comp.value == 144

    def test_void_calls(self):
        src = """
fn fill(a: int[]): void {
  for (let i: int = 0; i < len(a); i = i + 1) { a[i] = i; }
}
fn main(): int {
  let a: int[] = new int[5];
  fill(a);
  return a[4];
}
"""
        interp, comp = both_tiers(src)
        assert interp.value == comp.value == 4


class TestExceptions:
    def test_bounds_error_same_check_id(self):
        src = """
fn main(): int {
  let a: int[] = new int[3];
  let i: int = 7;
  return a[i];
}
"""
        program = compile_source(src)
        compiled = compile_to_python(clone_program(program))
        with pytest.raises(BoundsCheckError) as interp_exc:
            run(program, "main")
        with pytest.raises(BoundsCheckError) as comp_exc:
            compiled.run("main")
        assert interp_exc.value.check_id == comp_exc.value.check_id
        assert interp_exc.value.kind == comp_exc.value.kind

    def test_negative_array_size(self):
        from repro.errors import NegativeArraySizeError

        src = "fn main(): int { let n: int = 0 - 2; let a: int[] = new int[n]; return 0; }"
        compiled = compile_to_python(compile_source(src))
        with pytest.raises(NegativeArraySizeError):
            compiled.run("main")

    def test_division_by_zero(self):
        from repro.errors import DivisionByZeroError

        src = "fn main(): int { let z: int = 0; return 4 / z; }"
        compiled = compile_to_python(compile_source(src))
        with pytest.raises(DivisionByZeroError):
            compiled.run("main")


class TestSpeculationInCompiledTier:
    SRC = """
fn kernel(data: int[], probe: int, iters: int): int {
  let acc: int = 0;
  let iter: int = 0;
  while (iter < iters) {
    acc = acc + data[probe];
    iter = iter + 1;
  }
  return acc;
}
fn main(): int {
  let data: int[] = new int[32];
  return kernel(data, 4, 25);
}
"""

    def build(self):
        from repro.runtime.profiler import collect_profile

        program = compile_source(self.SRC)
        profile = collect_profile(program, "main")
        abcd(program, pre=True, profile=profile)
        return program

    def test_guarded_checks_compiled(self):
        program = self.build()
        compiled = compile_to_python(program)
        result = compiled.run("main")
        assert result.value == 0
        assert compiled.stats.speculative_checks > 0
        assert compiled.stats.speculation_failures == 0

    def test_speculation_failure_recovery_compiled(self):
        program = self.build()
        compiled = compile_to_python(program)
        with pytest.raises(BoundsCheckError):
            compiled.run("kernel", [ArrayValue(8), 100, 3])


class TestUnsignedChecksCompiled:
    def test_merged_check_semantics(self):
        from repro.core.extensions import merge_program_unsigned_checks

        src = """
fn probe(a: int[], x: int): int {
  let idx: int = x / 2;
  return a[idx];
}
fn main(): int {
  let a: int[] = new int[8];
  a[3] = 42;
  return probe(a, 6);
}
"""
        program = compile_source(src)
        abcd(program)
        merge_program_unsigned_checks(program)
        compiled = compile_to_python(program)
        assert compiled.run("main").value == 42
        assert compiled.stats.unsigned_checks > 0
        with pytest.raises(BoundsCheckError) as excinfo:
            compiled.run("probe", [ArrayValue(4), -6])
        assert excinfo.value.kind == "lower"


class TestCorpusEquivalence:
    @pytest.mark.parametrize(
        "name", ["Sieve", "bubbleSort", "Hanoi", "db", "toba"]
    )
    def test_tiers_agree(self, name):
        source = get(name).source()
        interp, comp = both_tiers(source)
        assert interp.value == comp.value
        assert interp.stats.total_checks == comp.stats.total_checks
        assert interp.stats.cycles == comp.stats.cycles

    @pytest.mark.parametrize("name", ["biDirBubbleSort", "jess"])
    def test_tiers_agree_optimized(self, name):
        source = get(name).source()
        interp, comp = both_tiers(source, optimize=True)
        assert interp.value == comp.value
        assert interp.stats.total_checks == comp.stats.total_checks


class TestGeneratedSource:
    def test_sources_exposed(self):
        program = compile_source("fn main(): int { return 3; }")
        compiled = compile_to_python(program)
        assert "def main()" in compiled.sources["main"]

    def test_mangling_injective(self):
        from repro.runtime.codegen import _mangle

        names = ["%t1", "t.1", "t_d_1", "x@inl0", "x_a_inl0", "j.2", "j_2", "t1"]
        mangled = [_mangle(n) for n in names]
        assert len(set(mangled)) == len(names)
        # And every result is a valid Python identifier.
        assert all(m.isidentifier() for m in mangled)
