"""Interrupt handling of the long-running CLI campaigns.

``repro fuzz`` and ``repro bench`` can run for many minutes; Ctrl-C (or
a SIGTERM from a CI timeout) must not discard everything measured so
far.  Both commands catch the interrupt, report the *partial* result,
and exit with the distinct code 130 so callers can tell "interrupted"
from "failed" and from "clean".
"""

from __future__ import annotations

import json
import signal

import pytest

from repro import cli
from repro.cli import EXIT_INTERRUPTED, _sigterm_as_interrupt
from repro.fuzz.campaign import run_campaign
from repro.fuzz.oracle import OracleVerdict


def interrupt_after(n: int):
    """An oracle stand-in that raises KeyboardInterrupt on call ``n``."""
    calls = {"count": 0}

    def fake_check_source(source, config):
        calls["count"] += 1
        if calls["count"] >= n:
            raise KeyboardInterrupt
        return OracleVerdict(classification="match")

    return fake_check_source


class TestFuzzInterrupt:
    def test_campaign_keeps_partial_result(self, monkeypatch):
        monkeypatch.setattr(
            "repro.fuzz.campaign.check_source", interrupt_after(3)
        )
        result = run_campaign(seeds=10)
        assert result.interrupted
        assert result.counters["programs"] == 2
        assert result.counters["match"] == 2
        assert result.stats.counters["fuzz.interrupted"] == 1
        assert result.to_json()["interrupted"] is True

    def test_cli_exits_130_with_partial_summary(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.fuzz.campaign.check_source", interrupt_after(4)
        )
        code = cli.main(["fuzz", "--seeds", "10", "--quiet"])
        assert code == EXIT_INTERRUPTED == 130
        out = capsys.readouterr().out
        assert "INTERRUPTED after 3/10" in out
        assert "3 program(s)" in out

    def test_cli_json_payload_marks_interrupted(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.fuzz.campaign.check_source", interrupt_after(2)
        )
        code = cli.main(["fuzz", "--seeds", "10", "--quiet", "--json"])
        assert code == EXIT_INTERRUPTED
        payload = json.loads(capsys.readouterr().out)
        assert payload["interrupted"] is True
        assert payload["counters"]["programs"] == 1

    def test_interrupted_report_is_still_written(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.fuzz.campaign.check_source", interrupt_after(3)
        )
        report = tmp_path / "triage.json"
        result = run_campaign(seeds=10, report_path=str(report))
        assert result.interrupted
        assert report.exists()

    def test_clean_campaign_is_not_marked_interrupted(self, monkeypatch):
        monkeypatch.setattr(
            "repro.fuzz.campaign.check_source",
            lambda source, config: OracleVerdict(classification="match"),
        )
        result = run_campaign(seeds=3)
        assert not result.interrupted
        assert result.counters["programs"] == 3
        assert "fuzz.interrupted" not in result.stats.counters


class TestBenchInterrupt:
    def test_cli_exits_130_with_partial_rows(self, monkeypatch, capsys):
        from repro.bench import harness

        real_run_benchmark = harness.run_benchmark
        calls = {"count": 0}

        def fake_run_benchmark(program, config=None, pre=True, fuel=100_000_000):
            calls["count"] += 1
            if calls["count"] >= 2:
                raise KeyboardInterrupt
            return real_run_benchmark(program, config=config, pre=pre, fuel=fuel)

        monkeypatch.setattr(harness, "run_benchmark", fake_run_benchmark)
        code = cli.main(
            ["bench", "--names", "bubbleSort", "Qsort", "--json"]
        )
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "reporting partial results" in captured.err
        payload = json.loads(captured.out)
        assert len(payload) == 1  # one finished row survived

    def test_interrupt_before_any_row_is_still_130(self, monkeypatch, capsys):
        from repro.bench import harness

        def immediate_interrupt(program, config=None, pre=True, fuel=100_000_000):
            raise KeyboardInterrupt

        monkeypatch.setattr(harness, "run_benchmark", immediate_interrupt)
        code = cli.main(["bench", "--names", "bubbleSort"])
        assert code == EXIT_INTERRUPTED
        assert capsys.readouterr().out == ""


class TestSigtermTranslation:
    def test_sigterm_becomes_keyboard_interrupt(self):
        import os
        import time

        with pytest.raises(KeyboardInterrupt):
            with _sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(1)  # interrupted by the handler immediately

    def test_previous_handler_restored(self):
        previous = signal.getsignal(signal.SIGTERM)
        with _sigterm_as_interrupt():
            assert signal.getsignal(signal.SIGTERM) is not previous
        assert signal.getsignal(signal.SIGTERM) is previous
