"""Pass-manager architecture tests: CompilationSession, AnalysisManager
caching and invalidation, the pass registry, structural cloning, and the
SessionStats surfaces (--time-passes, bench --json)."""

import copy
import json

import pytest

from repro import CompilationSession, abcd, clone_program, compile_source, run
from repro.cli import main
from repro.errors import AnalysisInvalidationError, PassGuardError
from repro.ir.instructions import Jump
from repro.ir.printer import format_program
from repro.passes import (
    ANALYSES,
    AnalysisManager,
    FixpointGroup,
    PASS_REGISTRY,
    Pass,
    PassContext,
    PassManager,
    SessionStats,
    default_compile_passes,
    default_optimize_passes,
)
from repro.robustness.guard import PassGuard

SRC = """
fn main(): int {
  let a: int[] = new int[8];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  return s;
}
"""

TWO_FN_SRC = """
fn sum(a: int[]): int {
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {
    s = s + a[i];
  }
  return s;
}

fn main(): int {
  let a: int[] = new int[5];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i * 2;
  }
  return sum(a);
}
"""


def _session_through_pipeline(source=SRC):
    session = CompilationSession()
    program = session.compile(source)
    report = session.optimize(program)
    return session, program, report


# ----------------------------------------------------------------------
# Tentpole: the session API.
# ----------------------------------------------------------------------


class TestCompilationSession:
    def test_compile_optimize_run(self):
        session, program, report = _session_through_pipeline()
        assert program.function("main").ssa_form == "essa"
        assert report.eliminated_count() == report.analyzed > 0
        assert run(program, "main").value == 28

    def test_matches_one_shot_helpers(self):
        _, session_program, session_report = _session_through_pipeline()
        helper_program = compile_source(SRC)
        helper_report = abcd(helper_program)
        assert format_program(session_program) == format_program(helper_program)
        assert session_report.eliminated_count() == helper_report.eliminated_count()

    def test_report_carries_session_stats(self):
        session, _, report = _session_through_pipeline()
        assert report.session_stats is session.stats
        names = set(report.session_stats.passes)
        assert {"essa", "abcd", "check-removal"} <= names

    def test_one_shot_abcd_carries_session_stats(self):
        program = compile_source(SRC)
        report = abcd(program)
        assert report.session_stats is not None
        assert "abcd" in report.session_stats.passes

    def test_stats_cover_compile_and_optimize(self):
        session, _, _ = _session_through_pipeline()
        recorded = session.stats.passes
        assert recorded["essa"].invocations == 1
        assert recorded["check-removal"].changes > 0
        assert session.stats.total_seconds >= 0.0
        assert session.stats.rollback_count == 0

    def test_strict_session_escalates(self, monkeypatch):
        import repro.core.abcd as abcd_module

        session = CompilationSession(strict=True)
        program = session.compile(SRC)

        def boom(*args, **kwargs):
            raise RuntimeError("injected")

        monkeypatch.setattr(abcd_module, "build_graphs", boom)
        with pytest.raises(PassGuardError):
            session.optimize(program)


# ----------------------------------------------------------------------
# Satellite 1: the analysis cache is demonstrably effective.
# ----------------------------------------------------------------------


class TestAnalysisCaching:
    def test_dominance_computed_at_most_twice_per_function(self):
        """Through the full default pipeline (e-SSA + standard opts + ABCD)
        dominance is computed at most twice per function: once for SSA
        construction, once after the fixpoint group invalidated it."""
        session = CompilationSession()
        program = session.compile(TWO_FN_SRC)
        session.optimize(program)
        for name in program.functions:
            assert session.analysis.misses_for(name, "domtree") <= 2, name

    def test_cache_hits_are_recorded(self):
        session, _, _ = _session_through_pipeline()
        assert session.analysis.total_hits > 0
        assert session.analysis.total_misses > 0
        stats = session.analysis.stats()
        assert set(stats) == {"hits", "misses", "seconds"}

    def test_get_caches_and_invalidate_drops(self):
        manager = AnalysisManager()
        program = compile_source(SRC)
        fn = program.function("main")
        first = manager.get("domtree", fn)
        assert manager.get("domtree", fn) is first
        assert manager.hits["domtree"] == 1
        manager.invalidate(fn, ("domtree",))
        assert manager.cached("domtree", fn) is None
        assert manager.get("domtree", fn) is not first

    def test_retain_only_keeps_declared(self):
        manager = AnalysisManager()
        program = compile_source(SRC)
        fn = program.function("main")
        manager.get("domtree", fn)
        manager.get("liveness", fn)
        manager.retain_only(fn, ("domtree",))
        assert manager.cached("domtree", fn) is not None
        assert manager.cached("liveness", fn) is None


# ----------------------------------------------------------------------
# Satellite 4: invalidation-correctness checking (debug mode).
# ----------------------------------------------------------------------


class _CfgMutatingLiar(Pass):
    """Mutates the CFG while falsely declaring it preserves dominance."""

    name = "cfg-liar"
    requires = ("domtree",)
    preserves = ("domtree",)
    snapshot = False
    verify = False

    def run(self, fn, ctx):
        for label in fn.reachable_blocks():
            block = fn.blocks[label]
            term = block.terminator
            if isinstance(term, Jump) and not fn.blocks[term.target].phis:
                mid = fn.new_block("split")
                mid.terminator = Jump(term.target)
                term.target = mid.label
                return 1
        raise AssertionError("no splittable edge found")


class _HonestNoop(Pass):
    name = "honest-noop"
    requires = ("domtree",)
    preserves = ("domtree",)
    snapshot = False
    verify = False

    def run(self, fn, ctx):
        return 0


def _debug_context(program):
    analysis = AnalysisManager(debug=True)
    return PassContext(
        program=program,
        analysis=analysis,
        guard=PassGuard(),
        stats=SessionStats(analysis),
    )


class TestDebugInvalidationCheck:
    def test_lying_pass_is_caught(self):
        program = compile_source(SRC)
        fn = program.function("main")
        ctx = _debug_context(program)
        manager = PassManager(ctx)
        with pytest.raises(AnalysisInvalidationError, match="cfg-liar"):
            manager.run_function_pass(_CfgMutatingLiar(), fn)
        # The stale entry was dropped: the next get recomputes cleanly.
        assert ctx.analysis.cached("domtree", fn) is None

    def test_honest_pass_passes(self):
        program = compile_source(SRC)
        fn = program.function("main")
        manager = PassManager(_debug_context(program))
        assert manager.run_function_pass(_HonestNoop(), fn) == 0

    def test_debug_session_runs_default_pipeline_clean(self):
        """Every registered pass's ``preserves`` declaration survives the
        recompute-and-compare check over a real program."""
        session = CompilationSession(debug=True)
        program = session.compile(TWO_FN_SRC)
        report = session.optimize(program)
        assert report.eliminated_count() > 0
        assert session.stats.rollback_count == 0


# ----------------------------------------------------------------------
# The registry and default pipelines.
# ----------------------------------------------------------------------


class TestRegistry:
    def test_all_passes_registered(self):
        assert set(PASS_REGISTRY) == {
            "inline",
            "essa",
            "copy-propagation",
            "constant-folding",
            "dce",
            "standard-pipeline",
            "abcd",
            "pre",
            "certify",
            "check-removal",
            "store-capture",
        }
        for name, p in PASS_REGISTRY.items():
            assert p.name == name
            assert isinstance(p.preserves, tuple)
            assert all(analysis in ANALYSES for analysis in p.preserves)

    def test_default_compile_passes_shapes(self):
        names = [
            getattr(p, "name") for p in default_compile_passes(inline=True)
        ]
        assert names == ["inline", "essa", "standard-pipeline"]
        bare = [getattr(p, "name") for p in default_compile_passes(standard_opts=False)]
        assert bare == ["essa"]

    def test_default_optimize_passes(self):
        assert [p.name for p in default_optimize_passes()] == [
            "abcd",
            "pre",
            "certify",
            "check-removal",
        ]

    def test_fixpoint_group_preserves_is_member_intersection(self):
        group = FixpointGroup(
            "g", [PASS_REGISTRY["copy-propagation"], PASS_REGISTRY["dce"]]
        )
        assert group.preserves == ("domtree", "frontiers", "loops")
        with_folding = FixpointGroup(
            "g2", [PASS_REGISTRY["copy-propagation"], PASS_REGISTRY["constant-folding"]]
        )
        assert with_folding.preserves == ()


# ----------------------------------------------------------------------
# Satellite 2: structural clone replaces deepcopy.
# ----------------------------------------------------------------------


class TestStructuralClone:
    def test_clone_matches_deepcopy_output(self):
        program = compile_source(TWO_FN_SRC)
        assert format_program(program.clone()) == format_program(
            copy.deepcopy(program)
        )

    def test_clone_is_independent(self):
        program = compile_source(SRC)
        cloned = clone_program(program)
        fn = cloned.function("main")
        label = next(iter(fn.blocks))
        fn.blocks[label].body.clear()
        assert format_program(program) != format_program(cloned)

    def test_clone_preserves_counters_and_form(self):
        program = compile_source(SRC)
        cloned = program.clone()
        assert cloned._next_check_id == program._next_check_id
        assert cloned._next_guard_group == program._next_guard_group
        fn, cfn = program.function("main"), cloned.function("main")
        assert cfn.ssa_form == fn.ssa_form
        assert cfn._next_label == fn._next_label
        assert cfn._next_temp == fn._next_temp

    def test_cloned_program_behaves_identically(self):
        program = compile_source(SRC)
        cloned = clone_program(program)
        abcd(cloned)
        assert run(cloned, "main").value == run(program, "main").value


# ----------------------------------------------------------------------
# Satellite 3: CLI surfaces (--time-passes, bench --json).
# ----------------------------------------------------------------------


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mj"
    path.write_text(SRC)
    return str(path)


class TestCliSurfaces:
    def test_time_passes_prints_table(self, source_file, capsys):
        assert main(["optimize", source_file, "--time-passes"]) == 0
        out = capsys.readouterr().out
        assert "eliminated 4 of 4 checks" in out
        assert "analysis cache" in out
        assert "essa" in out
        assert "check-removal" in out

    def test_optimize_without_flag_omits_table(self, source_file, capsys):
        assert main(["optimize", source_file]) == 0
        assert "analysis cache" not in capsys.readouterr().out

    def test_bench_json_includes_session_stats(self, capsys):
        assert main(["bench", "--names", "Sieve", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        row = payload[0]
        assert row["name"] == "Sieve"
        stats = row["session_stats"]
        pass_names = {entry["name"] for entry in stats["passes"]}
        assert {"essa", "abcd", "check-removal"} <= pass_names
        assert "hits" in stats["analysis"]
        assert stats["total_seconds"] >= 0.0


# ----------------------------------------------------------------------
# SessionStats bookkeeping.
# ----------------------------------------------------------------------


class TestSessionStats:
    def test_record_accumulates(self):
        stats = SessionStats()
        stats.record("p", 0.5, changed=2)
        stats.record("p", 0.25, rollback=True)
        entry = stats.passes["p"]
        assert entry.invocations == 2
        assert entry.changes == 2
        assert entry.rollbacks == 1
        assert stats.total_seconds == pytest.approx(0.75)
        assert stats.rollback_count == 1

    def test_to_json_round_trips(self):
        session, _, _ = _session_through_pipeline()
        payload = json.loads(json.dumps(session.stats.to_json()))
        assert payload["total_seconds"] >= 0.0
        assert any(entry["name"] == "abcd" for entry in payload["passes"])
        assert payload["analysis"]["misses"]["domtree"] >= 1

    def test_rollbacks_counted_per_pass(self, monkeypatch):
        import repro.core.abcd as abcd_module

        session = CompilationSession()
        program = session.compile(SRC)

        def boom(*args, **kwargs):
            raise RuntimeError("injected")

        monkeypatch.setattr(abcd_module, "build_graphs", boom)
        report = session.optimize(program)
        assert report.rollbacks_by_pass() == {"abcd": 1}
        assert session.stats.passes["abcd"].rollbacks == 1
        # The program still runs, unoptimized but correct.
        assert run(program, "main").value == 28
